#include "storage/fault_injector.h"

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace redo::storage {
namespace {

Page PageWith(int64_t value, core::Lsn lsn) {
  Page p;
  for (uint32_t s = 0; s < Page::NumSlots(); ++s) p.WriteSlot(s, value);
  p.set_lsn(lsn);
  return p;
}

TEST(FaultInjectorTest, ZeroProbabilityInjectorIsTransparent) {
  Disk disk(4);
  FaultInjector injector(FaultInjectorOptions{}, /*seed=*/1);
  disk.set_fault_injector(&injector);
  const Page p = PageWith(7, 3);
  ASSERT_TRUE(disk.WritePage(1, p).ok());
  Result<Page> back = disk.ReadPage(1);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value() == p);
  EXPECT_EQ(injector.stats().torn_writes, 0u);
  EXPECT_EQ(injector.stats().read_errors, 0u);
}

TEST(FaultInjectorTest, TornWriteIsDetectedByChecksumAndHealable) {
  Disk disk(2);
  FaultInjectorOptions options;
  options.torn_write_probability = 1.0;  // every write tears
  FaultInjector injector(options, /*seed=*/7);
  disk.set_fault_injector(&injector);

  const Page old_page = PageWith(1, 10);
  {
    // Install the "old" version atomically first.
    disk.set_fault_injector(nullptr);
    ASSERT_TRUE(disk.WritePage(0, old_page).ok());
    disk.set_fault_injector(&injector);
  }
  const Page new_page = PageWith(2, 20);
  // The torn write reports success — that is the fault's whole danger.
  ASSERT_TRUE(disk.WritePage(0, new_page).ok());
  ASSERT_EQ(injector.stats().torn_writes, 1u);
  EXPECT_TRUE(injector.HasOutstandingFault(0));

  // The leading sectors are stale: the page still wears the OLD LSN.
  EXPECT_EQ(disk.PeekPage(0).lsn(), 10u);
  // But the checksum catches it: the mix verifies dirty and reads fail.
  EXPECT_EQ(disk.VerifyPage(0).code(), StatusCode::kCorruption);
  EXPECT_EQ(disk.ReadPage(0).status().code(), StatusCode::kCorruption);
  EXPECT_GE(disk.stats().checksum_failures, 2u);

  // Healing restores the intended content, checksum and all.
  EXPECT_TRUE(injector.HealPage(&disk, 0));
  EXPECT_FALSE(injector.HasOutstandingFault(0));
  ASSERT_TRUE(disk.VerifyPage(0).ok());
  Result<Page> back = disk.ReadPage(0);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value() == new_page);
}

TEST(FaultInjectorTest, SuccessfulRewriteSupersedesTear) {
  Disk disk(1);
  FaultInjectorOptions options;
  options.torn_write_probability = 1.0;
  FaultInjector injector(options, /*seed=*/3);
  disk.set_fault_injector(&injector);
  ASSERT_TRUE(disk.WritePage(0, PageWith(5, 2)).ok());
  ASSERT_TRUE(injector.HasOutstandingFault(0));
  // A later atomic write of the same page makes the tear moot.
  injector.set_paused(true);
  const Page fixed = PageWith(6, 3);
  ASSERT_TRUE(disk.WritePage(0, fixed).ok());
  EXPECT_FALSE(injector.HasOutstandingFault(0));
  ASSERT_TRUE(disk.VerifyPage(0).ok());
  EXPECT_TRUE(disk.ReadPage(0).value() == fixed);
}

TEST(FaultInjectorTest, WriteErrorBurstsAreBounded) {
  Disk disk(1);
  FaultInjectorOptions options;
  options.write_error_probability = 1.0;
  options.max_write_error_burst = 2;
  FaultInjector injector(options, /*seed=*/11);
  disk.set_fault_injector(&injector);
  const Page p = PageWith(9, 1);
  // Each burst fails 1..max consecutive attempts; max is 2, so two
  // consecutive failures are always followed by... another burst (the
  // probability is 1 here). With probability < 1 a retry budget of
  // max_burst + 1 attempts always suffices; here just check errors fire
  // and stable state stays untouched.
  const Status st = disk.WritePage(0, p);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_GE(injector.stats().write_errors, 1u);
  EXPECT_EQ(disk.PeekPage(0).ReadSlot(0), 0) << "failed write left no trace";
  ASSERT_TRUE(disk.VerifyPage(0).ok()) << "failed write did not corrupt";
}

TEST(FaultInjectorTest, StickyReadErrorPersistsUntilHealed) {
  Disk disk(2);
  FaultInjectorOptions options;
  options.read_error_probability = 1.0;
  FaultInjector injector(options, /*seed=*/5);
  disk.set_fault_injector(&injector);
  EXPECT_EQ(disk.ReadPage(1).status().code(), StatusCode::kUnavailable);
  // Sticky: fails even with injection paused (the sector is bad until
  // repaired, not a transient).
  injector.set_paused(true);
  EXPECT_EQ(disk.ReadPage(1).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(injector.HasOutstandingFault(1));
  EXPECT_TRUE(injector.HealPage(&disk, 1));
  EXPECT_TRUE(disk.ReadPage(1).ok());
}

TEST(FaultInjectorTest, HealAllRepairsEverything) {
  Disk disk(8);
  FaultInjectorOptions options;
  options.torn_write_probability = 1.0;
  FaultInjector injector(options, /*seed=*/13);
  disk.set_fault_injector(&injector);
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_TRUE(disk.WritePage(id, PageWith(int64_t{3} + id, 5 + id)).ok());
  }
  EXPECT_EQ(injector.stats().torn_writes, 4u);
  EXPECT_EQ(injector.HealAll(&disk), 4u);
  for (PageId id = 0; id < 4; ++id) {
    ASSERT_TRUE(disk.VerifyPage(id).ok()) << "page " << id;
    EXPECT_EQ(disk.PeekPage(id).lsn(), 5u + id);
  }
  EXPECT_EQ(injector.stats().pages_healed, 4u);
}

TEST(FaultInjectorTest, PausedInjectorStopsNewFaults) {
  Disk disk(1);
  FaultInjectorOptions options;
  options.torn_write_probability = 1.0;
  options.write_error_probability = 1.0;
  options.read_error_probability = 1.0;
  FaultInjector injector(options, /*seed=*/17);
  disk.set_fault_injector(&injector);
  injector.set_paused(true);
  const Page p = PageWith(4, 9);
  ASSERT_TRUE(disk.WritePage(0, p).ok());
  ASSERT_TRUE(disk.ReadPage(0).ok());
  EXPECT_EQ(injector.stats().torn_writes, 0u);
  EXPECT_EQ(injector.stats().write_errors, 0u);
  EXPECT_EQ(injector.stats().read_errors, 0u);
}

TEST(FaultInjectorTest, TearNeverProducesValidChecksum) {
  // The injector must never tear a write into a mix that verifies clean
  // (that would be silent corruption by construction). Hammer writes
  // whose diffs sit at various offsets and check every tear is caught.
  Disk disk(1);
  FaultInjectorOptions options;
  options.torn_write_probability = 1.0;
  FaultInjector injector(options, /*seed=*/23);
  disk.set_fault_injector(&injector);
  uint64_t tears = 0;
  for (int round = 0; round < 200; ++round) {
    Page next;
    // Vary which slots change so tear points land on both sides of the
    // changed bytes.
    next.WriteSlot(static_cast<uint32_t>(round) % Page::NumSlots(), round + 1);
    next.set_lsn(static_cast<core::Lsn>(round + 1));
    ASSERT_TRUE(disk.WritePage(0, next).ok());
    if (injector.HasOutstandingFault(0)) {
      ++tears;
      EXPECT_EQ(disk.VerifyPage(0).code(), StatusCode::kCorruption)
          << "torn write verified clean at round " << round;
      injector.HealPage(&disk, 0);
    } else {
      ASSERT_TRUE(disk.VerifyPage(0).ok());
    }
  }
  EXPECT_GT(tears, 0u);
}

}  // namespace
}  // namespace redo::storage
