// Golden-file test of the recovery timeline: each method runs a fixed
// crash/recover scenario twice; both runs must export byte-identical,
// timing-free timelines, and the bytes must match the checked-in golden
// under tests/obs/golden/. A diff here means the redo-test verdict
// stream (or the event format) changed — either fix the regression or,
// if the change is intended, regenerate with:
//
//   REDO_REGEN_GOLDENS=1 ./build/tests/obs_test --gtest_filter='TimelineGolden.*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/minidb.h"
#include "obs/recovery_trace.h"

namespace redo {
namespace {

/// The recovery_timeline example's scenario, verbatim: writes across
/// five pages, a mid-stream checkpoint, more writes, two explicit page
/// flushes (giving LSN-test methods installed records to skip), full
/// force, crash, recover.
std::string RunScenarioTimeline(methods::MethodKind kind) {
  engine::MiniDbOptions options;
  options.num_pages = 8;
  options.cache_capacity = kind == methods::MethodKind::kLogical ? 0 : 4;
  engine::MiniDb db(options, methods::MakeMethod(kind, {options.num_pages}));
  obs::RecoveryTracer tracer(&db.metrics());
  db.Attach(engine::Instrumentation{nullptr, &tracer});

  EXPECT_TRUE(db.WriteSlot(1, 0, 100).ok());
  EXPECT_TRUE(db.WriteSlot(2, 0, 200).ok());
  EXPECT_TRUE(db.WriteSlot(3, 0, 300).ok());
  EXPECT_TRUE(db.Checkpoint().ok());
  EXPECT_TRUE(db.WriteSlot(1, 1, 101).ok());
  EXPECT_TRUE(db.WriteSlot(2, 1, 201).ok());
  EXPECT_TRUE(db.WriteSlot(4, 0, 400).ok());
  EXPECT_TRUE(db.WriteSlot(5, 0, 500).ok());
  EXPECT_TRUE(db.WriteSlot(4, 1, 401).ok());
  EXPECT_TRUE(db.MaybeFlushPage(1).ok());
  EXPECT_TRUE(db.MaybeFlushPage(2).ok());
  EXPECT_TRUE(db.log().ForceAll().ok());

  db.Crash();
  EXPECT_TRUE(db.Recover().ok());
  return tracer.ToText(/*include_timing=*/false);
}

std::string GoldenPath(methods::MethodKind kind) {
  return std::string(REDO_TEST_SRCDIR) + "/obs/golden/timeline_" +
         methods::MethodKindName(kind) + ".txt";
}

void CheckMethod(methods::MethodKind kind) {
  const std::string first = RunScenarioTimeline(kind);
  const std::string second = RunScenarioTimeline(kind);
  // Byte-identical across two independent engine instances.
  ASSERT_EQ(first, second) << "timeline is nondeterministic for "
                           << methods::MethodKindName(kind);

  const std::string path = GoldenPath(kind);
  if (std::getenv("REDO_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << first;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with REDO_REGEN_GOLDENS=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(first, golden.str())
      << "timeline for " << methods::MethodKindName(kind)
      << " diverged from its golden; regenerate with REDO_REGEN_GOLDENS=1 "
         "if the change is intended";
}

TEST(TimelineGolden, Logical) { CheckMethod(methods::MethodKind::kLogical); }
TEST(TimelineGolden, Physical) { CheckMethod(methods::MethodKind::kPhysical); }
TEST(TimelineGolden, Physiological) {
  CheckMethod(methods::MethodKind::kPhysiological);
}
TEST(TimelineGolden, GeneralizedLsn) {
  CheckMethod(methods::MethodKind::kGeneralized);
}

}  // namespace
}  // namespace redo
