#include "obs/recovery_trace.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace redo::obs {
namespace {

TEST(RecoveryTracer, RecordsARunWithVerdictTotals) {
  RecoveryTracer tracer;
  tracer.BeginRun("physiological");
  tracer.BeginPhase("redo-scan");
  tracer.CheckpointChosen(4, 2);
  tracer.Verdict(5, 1, RedoVerdict::kApplied, "page-lsn-older");
  tracer.Verdict(6, 2, RedoVerdict::kSkippedInstalled, "page-lsn-current");
  tracer.Verdict(7, 3, RedoVerdict::kNotExposed, "analysis-dpt");
  tracer.EndPhase();
  tracer.EndRun(true, "ok");

  EXPECT_FALSE(tracer.in_run());
  EXPECT_EQ(tracer.run_verdicts().applied, 1u);
  EXPECT_EQ(tracer.run_verdicts().skipped_installed, 1u);
  EXPECT_EQ(tracer.run_verdicts().not_exposed, 1u);
  EXPECT_EQ(tracer.run_verdicts().total(), 3u);

  ASSERT_EQ(tracer.events().size(), 8u);
  EXPECT_EQ(tracer.events().front().event, "run-begin");
  EXPECT_EQ(tracer.events().back().event, "run-end");
}

TEST(RecoveryTracer, NestedRunsJoinTheOuterTimeline) {
  RecoveryTracer tracer;
  tracer.BeginRun("ladder");
  tracer.Rung("mirror-repair", 0, "scrub repaired 1 damaged segment copies");
  tracer.BeginRun("physiological");  // db.Recover() inside the ladder
  tracer.Verdict(9, 1, RedoVerdict::kApplied, "page-lsn-older");
  tracer.EndRun(true, "ok");         // inner end: no run-end event yet
  EXPECT_TRUE(tracer.in_run());
  tracer.EndRun(true, "ok");
  EXPECT_FALSE(tracer.in_run());

  size_t begins = 0, ends = 0;
  for (const TraceEvent& event : tracer.events()) {
    begins += event.event == "run-begin";
    ends += event.event == "run-end";
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  EXPECT_EQ(tracer.run_verdicts().applied, 1u);
}

TEST(RecoveryTracer, ClearDropsEventsButKeepsCumulativeTotals) {
  RecoveryTracer tracer;
  tracer.BeginRun("m");
  tracer.Verdict(1, 0, RedoVerdict::kApplied, "redo-all");
  tracer.EndRun(true, "ok");
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.total_verdicts().applied, 1u);

  tracer.BeginRun("m");
  tracer.Verdict(2, 0, RedoVerdict::kApplied, "redo-all");
  tracer.EndRun(true, "ok");
  EXPECT_EQ(tracer.total_verdicts().applied, 2u);
  EXPECT_EQ(tracer.run_verdicts().applied, 1u);
}

TEST(RecoveryTracer, ExportsAreDeterministicWithoutTiming) {
  RecoveryTracer tracer;
  tracer.BeginRun("physical");
  tracer.BeginPhase("redo-scan");
  tracer.Verdict(3, 7, RedoVerdict::kApplied, "redo-all");
  tracer.Note("a \"quoted\" note");
  tracer.EndPhase();
  tracer.EndRun(false, "Corruption: hole at LSN 12");

  const std::string text = tracer.ToText(/*include_timing=*/false);
  const std::string jsonl = tracer.ToJsonl(/*include_timing=*/false);
  EXPECT_EQ(tracer.ToText(false), text);
  EXPECT_EQ(tracer.ToJsonl(false), jsonl);
  // Timing-free output carries no wall-clock field at all.
  EXPECT_EQ(text.find("wall_us"), std::string::npos);
  EXPECT_EQ(jsonl.find("wall_us"), std::string::npos);
  // Every JSONL line is one JSON object.
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t end = jsonl.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(jsonl[pos], '{');
    EXPECT_EQ(jsonl[end - 1], '}');
    pos = end + 1;
  }
  // The failure status and verdicts are in the exports.
  EXPECT_NE(text.find("Corruption: hole at LSN 12"), std::string::npos);
  EXPECT_NE(jsonl.find("\"verdict\":\"applied\""), std::string::npos);
}

TEST(RecoveryTracer, RegistersCumulativeMetrics) {
  MetricsRegistry registry;
  RecoveryTracer tracer(&registry);
  tracer.BeginRun("m");
  tracer.BeginPhase("redo-scan");
  tracer.Verdict(1, 0, RedoVerdict::kApplied, "redo-all");
  tracer.Verdict(2, 0, RedoVerdict::kSkippedInstalled, "page-lsn-current");
  tracer.EndPhase();
  tracer.EndRun(true, "ok");

  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.Value("recovery.runs"), 1);
  EXPECT_EQ(snap.Value("recovery.phases"), 1);
  EXPECT_EQ(snap.Value("recovery.verdict_applied"), 1);
  EXPECT_EQ(snap.Value("recovery.verdict_skipped_installed"), 1);
  EXPECT_EQ(snap.Value("recovery.verdict_not_exposed"), 0);
  const SnapshotEntry* phase_us = snap.Find("recovery.phase_us");
  ASSERT_NE(phase_us, nullptr);
  EXPECT_EQ(phase_us->count, 1u);
}

TEST(RedoVerdictName, CoversEveryVerdict) {
  EXPECT_STREQ(RedoVerdictName(RedoVerdict::kApplied), "applied");
  EXPECT_STREQ(RedoVerdictName(RedoVerdict::kSkippedInstalled),
               "skipped-installed");
  EXPECT_STREQ(RedoVerdictName(RedoVerdict::kNotExposed), "not-exposed");
}

}  // namespace
}  // namespace redo::obs
