#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/json_writer.h"

namespace redo::obs {
namespace {

TEST(Histogram, BucketsValuesAtInclusiveUpperBounds) {
  Histogram h({10, 20, 50});
  h.Observe(1);    // le=10
  h.Observe(10);   // le=10 (inclusive)
  h.Observe(11);   // le=20
  h.Observe(50);   // le=50 (inclusive)
  h.Observe(51);   // +inf
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1u + 10 + 11 + 50 + 51);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h({5});
  h.Observe(3);
  h.Observe(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket_counts()[0], 0u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
}

TEST(Histogram, DefaultBucketBoundsAreAscending) {
  for (const auto& bounds : {LatencyBucketsUs(), SizeBucketsBytes()}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

/// A toy source with one counter and one gauge the tests can steer.
struct FakeSource {
  uint64_t hits = 0;
  int64_t depth = 0;
  void Register(MetricsRegistry& registry, const std::string& prefix) {
    registry.Register(
        prefix,
        [this](MetricEmitter& emit) {
          emit.Counter("hits", hits);
          emit.Gauge("depth", depth);
        },
        [this] { hits = 0; });
  }
};

TEST(Registry, CollectsPrefixedAndSorted) {
  MetricsRegistry registry;
  FakeSource b, a;
  b.Register(registry, "zeta");
  a.Register(registry, "alpha");
  a.hits = 3;
  b.hits = 7;
  b.depth = -2;

  const Snapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.entries().size(), 4u);
  // Name-sorted regardless of registration order.
  EXPECT_EQ(snap.entries()[0].name, "alpha.depth");
  EXPECT_EQ(snap.entries()[1].name, "alpha.hits");
  EXPECT_EQ(snap.entries()[2].name, "zeta.depth");
  EXPECT_EQ(snap.entries()[3].name, "zeta.hits");
  EXPECT_EQ(snap.Value("alpha.hits"), 3);
  EXPECT_EQ(snap.Value("zeta.depth"), -2);
  EXPECT_EQ(snap.Value("missing"), 0);
  EXPECT_EQ(snap.Find("missing"), nullptr);
}

TEST(Registry, ResetAllInvokesSourceResets) {
  MetricsRegistry registry;
  FakeSource source;
  source.Register(registry, "s");
  source.hits = 9;
  registry.ResetAll();
  EXPECT_EQ(source.hits, 0u);
  EXPECT_EQ(registry.TakeSnapshot().Value("s.hits"), 0);
}

TEST(Registry, GetHistogramIsIdempotentAndSnapshotted) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10, 100});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(registry.GetHistogram("lat", {999}), h);  // same object, bounds kept
  h->Observe(5);
  h->Observe(50);
  const Snapshot snap = registry.TakeSnapshot();
  const SnapshotEntry* entry = snap.Find("lat");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::kHistogram);
  ASSERT_EQ(entry->bucket_counts.size(), 3u);
  EXPECT_EQ(entry->bucket_counts[0], 1u);
  EXPECT_EQ(entry->bucket_counts[1], 1u);
  EXPECT_EQ(entry->count, 2u);
  EXPECT_EQ(entry->sum, 55u);
  registry.ResetAll();
  EXPECT_EQ(h->count(), 0u);
}

TEST(SnapshotDelta, CountersSubtractGaugesKeepLatest) {
  MetricsRegistry registry;
  FakeSource source;
  source.Register(registry, "s");
  source.hits = 10;
  source.depth = 4;
  const Snapshot before = registry.TakeSnapshot();
  source.hits = 25;
  source.depth = 1;
  const Snapshot delta = registry.TakeSnapshot().Delta(before);
  EXPECT_EQ(delta.Value("s.hits"), 15);  // counter: after - before
  EXPECT_EQ(delta.Value("s.depth"), 1);  // gauge: latest reading
}

TEST(SnapshotDelta, CounterResetBetweenSnapshotsClampsAtZero) {
  MetricsRegistry registry;
  FakeSource source;
  source.Register(registry, "s");
  source.hits = 100;
  const Snapshot before = registry.TakeSnapshot();
  source.hits = 40;  // a reset happened in between
  EXPECT_EQ(registry.TakeSnapshot().Delta(before).Value("s.hits"), 0);
}

TEST(SnapshotDelta, HistogramSubtractsPerBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {10});
  h->Observe(5);
  h->Observe(500);
  const Snapshot before = registry.TakeSnapshot();
  h->Observe(5);
  h->Observe(5);
  const Snapshot delta = registry.TakeSnapshot().Delta(before);
  const SnapshotEntry* entry = delta.Find("lat");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->bucket_counts[0], 2u);
  EXPECT_EQ(entry->bucket_counts[1], 0u);
  EXPECT_EQ(entry->count, 2u);
  EXPECT_EQ(entry->sum, 10u);
}

TEST(Snapshot, WithoutPrefixDropsMatchingEntries) {
  MetricsRegistry registry;
  FakeSource a, b;
  a.Register(registry, "keep");
  b.Register(registry, "drop");
  const Snapshot snap = registry.TakeSnapshot().WithoutPrefix("drop.");
  ASSERT_EQ(snap.entries().size(), 2u);
  EXPECT_EQ(snap.entries()[0].name, "keep.depth");
  EXPECT_EQ(snap.entries()[1].name, "keep.hits");
}

TEST(Snapshot, TextAndJsonExportersAreDeterministic) {
  MetricsRegistry registry;
  FakeSource source;
  source.Register(registry, "s");
  source.hits = 2;
  source.depth = -1;
  Histogram* h = registry.GetHistogram("lat", {10});
  h->Observe(7);
  h->Observe(70);
  const Snapshot snap = registry.TakeSnapshot();

  EXPECT_EQ(snap.ToText(),
            "lat{le=10} 1\n"
            "lat{le=inf} 2\n"  // cumulative
            "lat_sum 77\n"
            "lat_count 2\n"
            "s.depth -1\n"
            "s.hits 2\n");
  const std::string json = snap.ToJson();
  EXPECT_EQ(json,
            "{\"lat\":{\"buckets\":{\"le_10\":1,\"le_inf\":1},"
            "\"sum\":77,\"count\":2},\"s.depth\":-1,\"s.hits\":2}");
  // Round-trip stability: exporting twice yields identical bytes.
  EXPECT_EQ(snap.ToJson(), json);
  EXPECT_EQ(registry.TakeSnapshot().ToJson(), json);
}

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Key("msg");
  w.String("a \"quote\"\\\n\ttab");
  w.Key("list");
  w.BeginArray();
  w.Int(-3);
  w.UInt(7);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.Take(),
            "{\"msg\":\"a \\\"quote\\\"\\\\\\n\\ttab\","
            "\"list\":[-3,7,true,null]}");
}

}  // namespace
}  // namespace redo::obs
