#include "wal/log_record.h"

#include <gtest/gtest.h>

namespace redo::wal {
namespace {

TEST(PayloadTest, WriterReaderRoundTrip) {
  PayloadWriter w;
  w.U8(7).U16(300).U32(70000).U64(1ULL << 40).I64(-5);
  const uint8_t blob[] = {1, 2, 3};
  w.Bytes(blob, 3);
  const std::vector<uint8_t> bytes = w.Take();

  PayloadReader r(bytes);
  EXPECT_EQ(r.U8().value(), 7);
  EXPECT_EQ(r.U16().value(), 300);
  EXPECT_EQ(r.U32().value(), 70000u);
  EXPECT_EQ(r.U64().value(), 1ULL << 40);
  EXPECT_EQ(r.I64().value(), -5);
  EXPECT_EQ(r.Bytes(3).value(), std::vector<uint8_t>({1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(PayloadTest, UnderrunReturnsCorruption) {
  const std::vector<uint8_t> bytes = {1, 2};
  PayloadReader r(bytes);
  EXPECT_EQ(r.U64().status().code(), StatusCode::kCorruption);
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord record;
  record.lsn = 42;
  record.type = RecordType::kPageSplit;
  record.payload = {9, 8, 7, 6};
  const std::vector<uint8_t> encoded = EncodeRecord(record);
  size_t offset = 0;
  Result<LogRecord> decoded = DecodeRecord(encoded, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), record);
  EXPECT_EQ(offset, encoded.size());
}

TEST(LogRecordTest, EmptyPayloadRoundTrip) {
  LogRecord record;
  record.lsn = 1;
  record.type = RecordType::kCheckpoint;
  const std::vector<uint8_t> encoded = EncodeRecord(record);
  size_t offset = 0;
  EXPECT_TRUE(DecodeRecord(encoded, &offset).ok());
}

TEST(LogRecordTest, MultipleRecordsDecodeSequentially) {
  LogRecord a{1, RecordType::kSlotWrite, {1}};
  LogRecord b{2, RecordType::kPageImage, {2, 2}};
  std::vector<uint8_t> bytes = EncodeRecord(a);
  const std::vector<uint8_t> second = EncodeRecord(b);
  bytes.insert(bytes.end(), second.begin(), second.end());

  size_t offset = 0;
  EXPECT_EQ(DecodeRecord(bytes, &offset).value(), a);
  EXPECT_EQ(DecodeRecord(bytes, &offset).value(), b);
  EXPECT_EQ(offset, bytes.size());
}

TEST(LogRecordTest, TruncatedRecordDetected) {
  LogRecord record{1, RecordType::kSlotWrite, {1, 2, 3}};
  std::vector<uint8_t> encoded = EncodeRecord(record);
  encoded.resize(encoded.size() - 4);  // torn tail
  size_t offset = 0;
  EXPECT_EQ(DecodeRecord(encoded, &offset).status().code(),
            StatusCode::kCorruption);
}

TEST(LogRecordTest, TruncationAtEveryByteOffsetDetected) {
  // A torn force can cut the final record at ANY byte. Wherever the cut
  // lands — inside the length prefix, the header, the payload, or the
  // trailing checksum — decoding must fail cleanly (kCorruption) and
  // must not advance the offset past valid data.
  LogRecord intact{7, RecordType::kPageSplit, {10, 20, 30, 40, 50}};
  std::vector<uint8_t> prefix = EncodeRecord(LogRecord{
      6, RecordType::kSlotWrite, {1, 2}});
  const size_t prefix_size = prefix.size();
  const std::vector<uint8_t> tail = EncodeRecord(intact);
  for (size_t cut = 0; cut < tail.size(); ++cut) {
    std::vector<uint8_t> bytes = prefix;
    bytes.insert(bytes.end(), tail.begin(),
                 tail.begin() + static_cast<ptrdiff_t>(cut));
    size_t offset = 0;
    ASSERT_TRUE(DecodeRecord(bytes, &offset).ok()) << "cut=" << cut;
    ASSERT_EQ(offset, prefix_size) << "cut=" << cut;
    const Result<LogRecord> torn = DecodeRecord(bytes, &offset);
    EXPECT_EQ(torn.status().code(), StatusCode::kCorruption) << "cut=" << cut;
    EXPECT_EQ(offset, prefix_size)
        << "failed decode must not advance the offset (cut=" << cut << ")";
  }
  // And the un-cut record still decodes (the loop's sanity complement).
  std::vector<uint8_t> whole = prefix;
  whole.insert(whole.end(), tail.begin(), tail.end());
  size_t offset = prefix_size;
  EXPECT_EQ(DecodeRecord(whole, &offset).value(), intact);
}

TEST(LogRecordTest, ImplausibleLengthPrefixRejected) {
  // A tear can leave garbage where the next record's length prefix
  // would be; a huge value must not trigger a huge read-ahead.
  std::vector<uint8_t> bytes(64, 0xFF);
  size_t offset = 0;
  EXPECT_EQ(DecodeRecord(bytes, &offset).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(offset, 0u);
}

TEST(LogRecordTest, BitFlipDetectedByChecksum) {
  LogRecord record{1, RecordType::kSlotWrite, {1, 2, 3}};
  std::vector<uint8_t> encoded = EncodeRecord(record);
  encoded[encoded.size() / 2] ^= 0x40;
  size_t offset = 0;
  EXPECT_EQ(DecodeRecord(encoded, &offset).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace redo::wal
