// The group-commit pipeline (DESIGN.md §10): appenders stage encoded
// frames into a bounded ring; a committer thread batches pending commit
// requests into one CRC-framed force and wakes every waiter the force
// covered. These tests pin the pipeline's contracts — LSN uniqueness
// under concurrent appenders, batching, byte-identical stable images,
// the freeze (crash-boundary) semantics, and ring backpressure.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "wal/log_manager.h"

namespace redo::wal {
namespace {

GroupCommitOptions FastOptions() {
  GroupCommitOptions gc;
  gc.ring_capacity = 256;
  gc.window_us = 50;
  gc.force_latency_us = 0;
  return gc;
}

TEST(GroupCommitTest, StartStopLifecycle) {
  LogManager log;
  EXPECT_FALSE(log.group_commit_active());
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());
  EXPECT_TRUE(log.group_commit_active());
  EXPECT_FALSE(log.StartGroupCommit(FastOptions()).ok())
      << "second start must fail while the pipeline runs";
  ASSERT_TRUE(log.StopGroupCommit().ok());
  EXPECT_FALSE(log.group_commit_active());
  EXPECT_FALSE(log.StopGroupCommit().ok()) << "stop without start must fail";
}

TEST(GroupCommitTest, StopDrainsEverythingAppended) {
  LogManager log;
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());
  for (int i = 0; i < 10; ++i) {
    log.Append(RecordType::kSlotWrite, {static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(log.StopGroupCommit().ok());
  EXPECT_EQ(log.stable_lsn(), 10u);
  EXPECT_EQ(log.StableRecords(1).value().size(), 10u);
}

TEST(GroupCommitTest, CommitWaitAcknowledgesAtDurableLsn) {
  LogManager log;
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());
  for (int i = 0; i < 5; ++i) log.Append(RecordType::kSlotWrite, {});
  Result<core::Lsn> acked = log.CommitWait(3);
  ASSERT_TRUE(acked.ok());
  EXPECT_GE(acked.value(), 3u);
  EXPECT_GE(log.stable_lsn(), 3u);
  ASSERT_TRUE(log.StopGroupCommit().ok());
}

TEST(GroupCommitTest, ConcurrentAppendersGetUniqueContiguousLsns) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 200;
  LogManager log;
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());

  std::mutex mu;
  std::set<core::Lsn> assigned;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &mu, &assigned, t] {
      std::vector<core::Lsn> mine;
      mine.reserve(kPerThread);
      for (size_t i = 0; i < kPerThread; ++i) {
        mine.push_back(
            log.Append(RecordType::kSlotWrite, {static_cast<uint8_t>(t)}));
      }
      std::lock_guard<std::mutex> lock(mu);
      assigned.insert(mine.begin(), mine.end());
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(log.StopGroupCommit().ok());

  // Every Append returned the LSN it actually got: all unique, spanning
  // exactly [1, N] with no gaps.
  EXPECT_EQ(assigned.size(), kThreads * kPerThread);
  EXPECT_EQ(*assigned.begin(), 1u);
  EXPECT_EQ(*assigned.rbegin(), kThreads * kPerThread);
  EXPECT_EQ(log.stable_lsn(), kThreads * kPerThread);
}

TEST(GroupCommitTest, AppendWithLsnEmbedsTheAssignedLsnAtomically) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 100;
  LogManager log;
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (size_t i = 0; i < kPerThread; ++i) {
        log.AppendWithLsn(RecordType::kPageImage, [](core::Lsn assigned) {
          std::vector<uint8_t> payload(8);
          for (int b = 0; b < 8; ++b) {
            payload[b] = static_cast<uint8_t>(assigned >> (8 * b));
          }
          return payload;
        });
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(log.StopGroupCommit().ok());

  // The payload-embedded LSN must match the record's LSN for every
  // record — the race this API closes would make them diverge.
  Result<std::vector<LogRecord>> stable = log.StableRecords(1);
  ASSERT_TRUE(stable.ok());
  ASSERT_EQ(stable.value().size(), kThreads * kPerThread);
  for (const LogRecord& record : stable.value()) {
    uint64_t embedded = 0;
    for (int b = 0; b < 8; ++b) {
      embedded |= static_cast<uint64_t>(record.payload[b]) << (8 * b);
    }
    ASSERT_EQ(embedded, record.lsn);
  }
}

TEST(GroupCommitTest, ManyCommitsBatchIntoFewerForces) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 16;
  LogManager log;
  GroupCommitOptions gc = FastOptions();
  gc.window_us = 200;
  gc.force_latency_us = 200;  // a slow device makes batching visible
  ASSERT_TRUE(log.StartGroupCommit(gc).ok());

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const core::Lsn lsn = log.Append(RecordType::kSlotWrite, {});
        Result<core::Lsn> acked = log.CommitWait(lsn);
        ASSERT_TRUE(acked.ok());
        ASSERT_GE(acked.value(), lsn);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(log.StopGroupCommit().ok());

  const LogStats& stats = log.stats();
  EXPECT_EQ(stats.group_commits, kThreads * kPerThread);
  EXPECT_GT(stats.group_batches, 0u);
  EXPECT_LT(stats.group_batches, stats.group_commits)
      << "a slow force with concurrent committers must batch";
  EXPECT_GE(stats.group_max_batch, 2u);
  EXPECT_EQ(log.stable_lsn(), kThreads * kPerThread);
}

TEST(GroupCommitTest, StableBytesIdenticalToSerialForce) {
  // The same appends through the pipeline and through the serial path
  // must produce byte-identical stable images (recovery cannot tell
  // which front end wrote the log).
  std::vector<std::vector<uint8_t>> payloads;
  for (uint8_t i = 0; i < 32; ++i) {
    payloads.push_back({i, static_cast<uint8_t>(i * 3), 0xAB});
  }

  LogManager serial;
  for (const auto& p : payloads) serial.Append(RecordType::kSlotWrite, p);
  ASSERT_TRUE(serial.ForceAll().ok());

  LogManager grouped;
  ASSERT_TRUE(grouped.StartGroupCommit(FastOptions()).ok());
  for (const auto& p : payloads) grouped.Append(RecordType::kSlotWrite, p);
  ASSERT_TRUE(grouped.CommitWait(payloads.size()).ok());
  ASSERT_TRUE(grouped.StopGroupCommit().ok());

  EXPECT_EQ(serial.stats().stable_bytes, grouped.stats().stable_bytes);
  Result<std::vector<LogRecord>> a = serial.StableRecords(1);
  Result<std::vector<LogRecord>> b = grouped.StableRecords(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].lsn, b.value()[i].lsn);
    EXPECT_EQ(a.value()[i].type, b.value()[i].type);
    EXPECT_EQ(a.value()[i].payload, b.value()[i].payload);
  }
}

TEST(GroupCommitTest, FreezeFailsPendingAndSubsequentCommits) {
  LogManager log;
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());
  log.Append(RecordType::kSlotWrite, {1});

  // A waiter for an LSN nothing will ever force blocks until the freeze
  // breaks it.
  std::atomic<bool> failed{false};
  std::thread waiter([&log, &failed] {
    Result<core::Lsn> acked = log.CommitWait(1000);
    failed.store(!acked.ok() &&
                 acked.status().code() == StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  log.FreezeGroupCommit();
  waiter.join();
  EXPECT_TRUE(failed.load()) << "pending CommitWait must fail kUnavailable";

  // Frozen is sticky: later commits fail too, even for forced LSNs.
  Result<core::Lsn> late = log.CommitWait(1);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  log.FreezeGroupCommit();  // idempotent
}

TEST(GroupCommitTest, FreezeThenCrashDropsUnforcedRecords) {
  LogManager log;
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());
  log.Append(RecordType::kSlotWrite, {1});
  Result<core::Lsn> acked = log.CommitWait(1);
  ASSERT_TRUE(acked.ok());
  log.Append(RecordType::kSlotWrite, {2});
  log.Append(RecordType::kSlotWrite, {3});
  log.FreezeGroupCommit();
  log.Crash();

  // The acknowledged record survives; the unacknowledged tail is gone.
  EXPECT_FALSE(log.group_commit_active());
  EXPECT_EQ(log.stable_lsn(), 1u);
  EXPECT_EQ(log.last_lsn(), 1u);

  // The freeze clears at the next start: the pipeline is usable again.
  ASSERT_TRUE(log.StartGroupCommit(FastOptions()).ok());
  const core::Lsn lsn = log.Append(RecordType::kSlotWrite, {4});
  EXPECT_EQ(lsn, 2u);
  Result<core::Lsn> reacked = log.CommitWait(lsn);
  ASSERT_TRUE(reacked.ok());
  ASSERT_TRUE(log.StopGroupCommit().ok());
}

TEST(GroupCommitTest, FullRingStallsAppendersUntilTheCommitterDrains) {
  LogManager log;
  GroupCommitOptions gc = FastOptions();
  gc.ring_capacity = 2;
  ASSERT_TRUE(log.StartGroupCommit(gc).ok());

  constexpr size_t kRecords = 12;
  std::thread appender([&log] {
    for (size_t i = 0; i < kRecords; ++i) {
      log.Append(RecordType::kSlotWrite, {static_cast<uint8_t>(i)});
    }
  });
  // Let the appender hit the full ring, then request a commit so the
  // committer starts draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Result<core::Lsn> acked = log.CommitWait(kRecords);
  ASSERT_TRUE(acked.ok());
  appender.join();
  ASSERT_TRUE(log.StopGroupCommit().ok());

  EXPECT_GE(log.stats().group_ring_stalls, 1u)
      << "a ring of 2 cannot absorb 12 appends without backpressure";
  EXPECT_EQ(log.stable_lsn(), kRecords);
  EXPECT_EQ(log.StableRecords(1).value().size(), kRecords);
}

TEST(GroupCommitTest, SerialCommitWaitForcesSynchronously) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  log.Append(RecordType::kSlotWrite, {2});
  Result<core::Lsn> acked = log.CommitWait(2);
  ASSERT_TRUE(acked.ok());
  EXPECT_GE(acked.value(), 2u);
  EXPECT_EQ(log.stable_lsn(), 2u);
  EXPECT_EQ(log.stats().group_batches, 0u)
      << "serial CommitWait pays for its own force, no committer batch";
  EXPECT_EQ(log.stats().forces, 1u);
}

}  // namespace
}  // namespace redo::wal
