// The segmented stable log: sealing at record boundaries, CRC32C seals,
// mirror repair, reseals, archiving, checkpoint truncation, the
// archive-backed media-recovery read path, and the parsed-record cache
// that keeps repeated scans from re-deserializing the whole image.

#include <gtest/gtest.h>

#include <string>

#include "wal/log_manager.h"

namespace redo::wal {
namespace {

// Every record below is 18 framing bytes + 14 payload bytes = 32 bytes;
// with 96-byte segments the log seals after every third record.
constexpr size_t kSegmentBytes = 96;
constexpr size_t kRecordBytes = 32;

LogManager MakeSegmented(size_t segment_bytes = kSegmentBytes) {
  LogManagerOptions options;
  options.segment_bytes = segment_bytes;
  return LogManager(options);
}

core::Lsn AppendForced(LogManager& log, uint8_t tag,
                       RecordType type = RecordType::kSlotWrite) {
  const size_t payload = type == RecordType::kCheckpoint ? 0 : 14;
  const core::Lsn lsn = log.Append(type, std::vector<uint8_t>(payload, tag));
  EXPECT_TRUE(log.ForceAll().ok());
  return lsn;
}

// The first sealed live segment (tests damage the oldest history).
SegmentInfo FirstSealed(const LogManager& log) {
  for (const SegmentInfo& info : log.LiveSegments()) {
    if (info.sealed) return info;
  }
  ADD_FAILURE() << "no sealed segment";
  return SegmentInfo{};
}

TEST(SegmentTest, SealsAtRecordBoundariesAndArchives) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 10; ++i) AppendForced(log, i);

  const std::vector<SegmentInfo> live = log.LiveSegments();
  ASSERT_GE(live.size(), 3u);
  core::Lsn expected_first = 1;
  for (size_t i = 0; i < live.size(); ++i) {
    const SegmentInfo& info = live[i];
    const bool is_active = i + 1 == live.size();
    EXPECT_EQ(info.sealed, !is_active) << "only the last segment is active";
    EXPECT_EQ(info.first_lsn, expected_first) << "segments tile the LSN space";
    if (info.sealed) {
      EXPECT_EQ(info.bytes % kRecordBytes, 0u) << "sealed at a record boundary";
      EXPECT_TRUE(info.archived) << "sealed segments ship to the archive";
      EXPECT_NE(info.primary_seal, 0u);
      EXPECT_EQ(info.primary_seal, info.mirror_seal) << "lockstep copies";
    }
    expected_first = info.last_lsn + 1;
  }
  EXPECT_EQ(log.stats().segments_sealed, live.size() - 1);
  EXPECT_EQ(log.ArchivedSegments().size(), live.size() - 1);
  EXPECT_EQ(log.archived_through(), live[live.size() - 2].last_lsn);
  EXPECT_EQ(log.live_begin_lsn(), 1u);

  Result<std::vector<LogRecord>> all = log.StableRecords(1);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(all.value()[i].lsn, i + 1);
}

TEST(SegmentTest, FlatLogNeverSeals) {
  LogManager log;  // segment_bytes = 0: the unbounded PR-1 behavior
  for (uint8_t i = 1; i <= 20; ++i) AppendForced(log, i);
  EXPECT_EQ(log.LiveSegments().size(), 1u);
  EXPECT_EQ(log.stats().segments_sealed, 0u);
  EXPECT_TRUE(log.ArchivedSegments().empty());
}

TEST(SegmentTest, ScrubRepairsBitRottenPrimaryFromMirror) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 7; ++i) AppendForced(log, i);
  const SegmentInfo target = FirstSealed(log);

  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kPrimary, 5, 0x40));
  const ScrubReport report = log.Scrub();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.repairs, 1u);
  ASSERT_FALSE(report.verdicts.empty());
  EXPECT_EQ(report.verdicts[0].state,
            SegmentVerdict::State::kRepairedFromMirror);
  EXPECT_EQ(log.stats().mirror_repairs, 1u);

  // The repair is durable: a second pass finds everything intact, and
  // the full record sequence reads back.
  const ScrubReport again = log.Scrub();
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.repairs, 0u);
  EXPECT_EQ(log.StableRecords(1).value().size(), 7u);
}

TEST(SegmentTest, ScrubRebuildsRottenMirrorFromPrimary) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 7; ++i) AppendForced(log, i);
  const SegmentInfo target = FirstSealed(log);

  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kMirror, 9, 0x01));
  const ScrubReport report = log.Scrub();
  EXPECT_TRUE(report.clean());
  ASSERT_FALSE(report.verdicts.empty());
  EXPECT_EQ(report.verdicts[0].state, SegmentVerdict::State::kMirrorRebuilt);
}

TEST(SegmentTest, ScrubRepairsLostCopyFromTwin) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 7; ++i) AppendForced(log, i);
  const SegmentInfo target = FirstSealed(log);

  ASSERT_TRUE(log.LoseSegmentCopy(target.id, LogCopy::kPrimary));
  EXPECT_TRUE(log.Scrub().clean());
  EXPECT_EQ(log.StableRecords(1).value().size(), 7u);
}

TEST(SegmentTest, ScrubResealsWhenOnlySealsAreTorn) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 7; ++i) AppendForced(log, i);
  const SegmentInfo target = FirstSealed(log);

  // Both seals damaged, bytes pristine: the segment still decodes
  // cleanly end-to-end and matches its LSN range, so the seal is
  // re-derived instead of declaring a hole.
  ASSERT_TRUE(log.TearSeal(target.id, LogCopy::kPrimary, 0xdeadbeef));
  ASSERT_TRUE(log.TearSeal(target.id, LogCopy::kMirror, 0xbadc0ffe));
  const ScrubReport report = log.Scrub();
  EXPECT_TRUE(report.clean());
  ASSERT_FALSE(report.verdicts.empty());
  EXPECT_EQ(report.verdicts[0].state, SegmentVerdict::State::kResealed);
  EXPECT_GE(log.stats().reseals, 1u);
  EXPECT_TRUE(log.Scrub().clean());
  EXPECT_EQ(log.StableRecords(1).value().size(), 7u);
}

TEST(SegmentTest, DoubleFaultIsAHoleAndScansStopThere) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 10; ++i) AppendForced(log, i);
  const std::vector<SegmentInfo> live = log.LiveSegments();
  ASSERT_GE(live.size(), 3u);
  const SegmentInfo& target = live[1];  // a middle sealed segment
  ASSERT_TRUE(target.sealed);

  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kPrimary, 3, 0x10));
  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kMirror, 3, 0x10));
  const ScrubReport report = log.Scrub();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.holes, 1u);
  EXPECT_EQ(report.first_unreadable_lsn, target.first_lsn);
  EXPECT_EQ(log.FirstHoleLsn(), target.first_lsn);

  // A redo prefix must be unbroken: the scan yields the records before
  // the hole and reports the damage — never the records past it.
  const StableScan scan = log.ScanStable(1);
  EXPECT_TRUE(scan.torn);
  ASSERT_FALSE(scan.records.empty());
  EXPECT_EQ(scan.records.back().lsn, target.first_lsn - 1);
}

TEST(SegmentTest, ArchiveCoversLiveHolesAndRepairsThem) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 10; ++i) AppendForced(log, i);
  const SegmentInfo target = FirstSealed(log);
  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kPrimary, 3, 0x10));
  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kMirror, 3, 0x10));
  ASSERT_NE(log.FirstHoleLsn(), 0u);

  // The media-recovery read path falls back to the archive copy.
  EXPECT_EQ(log.FirstUncoveredLsn(1), 0u);
  Result<std::vector<LogRecord>> covered = log.ReadWithArchive(1);
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(covered.value().size(), 10u);

  // And the live log can be re-seeded from it.
  EXPECT_EQ(log.RepairFromArchive(), 1u);
  EXPECT_EQ(log.FirstHoleLsn(), 0u);
  EXPECT_EQ(log.StableRecords(1).value().size(), 10u);
}

TEST(SegmentTest, UncoverableGapNamesItsFirstUnreadableLsn) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 10; ++i) AppendForced(log, i);
  const SegmentInfo target = FirstSealed(log);
  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kPrimary, 3, 0x10));
  ASSERT_TRUE(log.LoseSegmentCopy(target.id, LogCopy::kMirror));
  ASSERT_TRUE(log.LoseSegmentCopy(target.id, LogCopy::kArchive));

  EXPECT_EQ(log.FirstUncoveredLsn(1), target.first_lsn);
  const Result<std::vector<LogRecord>> read = log.ReadWithArchive(1);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().ToString().find(std::to_string(target.first_lsn)),
            std::string::npos)
      << "the failure must name the first unreadable LSN: "
      << read.status().ToString();

  // Reading from past the gap is still fine — the gap is below `from`.
  EXPECT_EQ(log.FirstUncoveredLsn(target.last_lsn + 1), 0u);
}

TEST(SegmentTest, CheckpointTruncationRetiresToArchive) {
  LogManager log = MakeSegmented();
  // No checkpoint yet: truncation has no anchor and must refuse.
  for (uint8_t i = 1; i <= 6; ++i) AppendForced(log, i);
  EXPECT_EQ(log.TruncateArchived(log.stable_lsn()), 0u);

  const core::Lsn checkpoint =
      AppendForced(log, 0, RecordType::kCheckpoint);
  for (uint8_t i = 7; i <= 10; ++i) AppendForced(log, i);
  log.SealActiveSegment();  // no-op if lsn 10 already sealed the segment

  const size_t dropped = log.TruncateArchived(checkpoint);
  EXPECT_GE(dropped, 1u);
  EXPECT_EQ(log.stats().segments_truncated, dropped);
  EXPECT_GT(log.live_begin_lsn(), 1u);
  EXPECT_LT(log.live_begin_lsn(), checkpoint + 1)
      << "the latest stable checkpoint must stay in the live log";

  // The truncated prefix is still served — transparently — from the
  // archive, so a scan from LSN 1 sees the full history.
  Result<std::vector<LogRecord>> all = log.StableRecords(1);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 11u);  // 10 writes + 1 checkpoint
  for (size_t i = 0; i < all.value().size(); ++i) {
    EXPECT_EQ(all.value()[i].lsn, i + 1);
  }

  // The checkpoint anchor survives truncation.
  Result<std::optional<LogRecord>> latest = log.LatestStableCheckpoint();
  ASSERT_TRUE(latest.ok());
  ASSERT_TRUE(latest.value().has_value());
  EXPECT_EQ(latest.value()->lsn, checkpoint);
}

TEST(SegmentTest, SealActiveSegmentNeedsVerifiedRecords) {
  LogManager log = MakeSegmented(1 << 20);  // too large to auto-seal
  EXPECT_FALSE(log.SealActiveSegment()) << "empty active segment";
  AppendForced(log, 1);
  EXPECT_TRUE(log.SealActiveSegment());
  EXPECT_EQ(log.LiveSegments().size(), 2u);
  EXPECT_FALSE(log.SealActiveSegment()) << "fresh active segment is empty";
}

// Satellite regression: StableRecords used to re-deserialize the whole
// stable byte image on every call. The parsed-record cache must serve
// repeat scans without any decode, and fault hooks must invalidate it
// (a cache must never mask damage).
TEST(SegmentTest, RepeatScansAreServedFromTheParsedCache) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 10; ++i) AppendForced(log, i);

  ASSERT_TRUE(log.StableRecords(1).ok());
  const uint64_t decodes_after_first = log.stats().scan_decodes;
  const uint64_t hits_after_first = log.stats().scan_cache_hits;
  EXPECT_EQ(decodes_after_first, 0u)
      << "records parsed at force time: a scan needs no decode";
  EXPECT_GT(hits_after_first, 0u);

  ASSERT_TRUE(log.StableRecords(1).ok());
  EXPECT_EQ(log.stats().scan_decodes, decodes_after_first)
      << "repeat scan must not re-deserialize";
  EXPECT_GT(log.stats().scan_cache_hits, hits_after_first);
}

TEST(SegmentTest, FaultHooksInvalidateTheParsedCache) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 10; ++i) AppendForced(log, i);
  const SegmentInfo target = FirstSealed(log);

  // Damage + undo (the injector's snapshot/restore pattern): the bytes
  // are byte-identical again, but the cache was invalidated, so the next
  // scan re-verifies by decoding instead of trusting stale parses.
  const SegmentCopyImage primary =
      log.PeekSegmentCopy(target.id, LogCopy::kPrimary).value();
  ASSERT_TRUE(log.CorruptSegmentByte(target.id, LogCopy::kPrimary, 5, 0x20));
  ASSERT_TRUE(log.RestoreSegmentCopy(target.id, LogCopy::kPrimary, primary));

  const uint64_t decodes_before = log.stats().scan_decodes;
  ASSERT_EQ(log.StableRecords(1).value().size(), 10u);
  EXPECT_GT(log.stats().scan_decodes, decodes_before)
      << "the invalidated segment must be re-decoded";

  const uint64_t decodes_after = log.stats().scan_decodes;
  ASSERT_TRUE(log.StableRecords(1).ok());
  EXPECT_EQ(log.stats().scan_decodes, decodes_after)
      << "and the refilled cache serves the next scan";
}

TEST(SegmentTest, TornTailSalvageIsConfinedToTheActiveSegment) {
  LogManager log = MakeSegmented();
  for (uint8_t i = 1; i <= 7; ++i) AppendForced(log, i);
  const core::Lsn stable = log.stable_lsn();

  // A crash tears an in-flight force mid-record; the sealed history is
  // untouched and salvage only truncates the active segment.
  log.Append(RecordType::kSlotWrite, std::vector<uint8_t>(14, 0xaa));
  const size_t pending = log.PendingForceBytes();
  ASSERT_GT(pending, 4u);
  ASSERT_EQ(log.TearInFlightForce(pending - 4), pending - 4);
  log.Crash();
  const SalvageResult salvage = log.SalvageTornTail();
  EXPECT_TRUE(salvage.torn);
  EXPECT_EQ(log.stable_lsn(), stable);
  EXPECT_TRUE(log.Scrub().clean()) << "sealed segments unaffected";
  EXPECT_EQ(log.StableRecords(1).value().size(), stable);
}

}  // namespace
}  // namespace redo::wal
