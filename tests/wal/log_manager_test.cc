#include "wal/log_manager.h"

#include <gtest/gtest.h>

namespace redo::wal {
namespace {

TEST(LogManagerTest, AppendAssignsMonotonicLsns) {
  LogManager log;
  EXPECT_EQ(log.Append(RecordType::kSlotWrite, {}), 1u);
  EXPECT_EQ(log.Append(RecordType::kSlotWrite, {}), 2u);
  EXPECT_EQ(log.last_lsn(), 2u);
  EXPECT_EQ(log.stable_lsn(), 0u);
}

TEST(LogManagerTest, ForceMovesPrefixToStable) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  log.Append(RecordType::kSlotWrite, {2});
  log.Append(RecordType::kSlotWrite, {3});
  ASSERT_TRUE(log.Force(2).ok());
  EXPECT_EQ(log.stable_lsn(), 2u);

  Result<std::vector<LogRecord>> stable = log.StableRecords(1);
  ASSERT_TRUE(stable.ok());
  ASSERT_EQ(stable.value().size(), 2u);
  EXPECT_EQ(stable.value()[0].payload, std::vector<uint8_t>{1});
  EXPECT_EQ(stable.value()[1].payload, std::vector<uint8_t>{2});
}

TEST(LogManagerTest, ForceBeyondEndForcesEverything) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.Force(999).ok());
  EXPECT_EQ(log.stable_lsn(), 1u);
}

TEST(LogManagerTest, ForceIsIdempotent) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  ASSERT_TRUE(log.Force(1).ok());
  const uint64_t bytes = log.stats().stable_bytes;
  ASSERT_TRUE(log.Force(1).ok());
  EXPECT_EQ(log.stats().stable_bytes, bytes) << "no duplicate stable records";
  EXPECT_EQ(log.StableRecords(1).value().size(), 1u);
}

TEST(LogManagerTest, CrashDropsVolatileTailOnly) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  log.Append(RecordType::kSlotWrite, {2});
  ASSERT_TRUE(log.Force(1).ok());
  log.Crash();
  EXPECT_EQ(log.stable_lsn(), 1u);
  EXPECT_EQ(log.last_lsn(), 1u) << "lost LSNs are reusable";
  EXPECT_EQ(log.StableRecords(1).value().size(), 1u);

  // Appends after recovery continue from the stable LSN.
  EXPECT_EQ(log.Append(RecordType::kSlotWrite, {3}), 2u);
}

TEST(LogManagerTest, StableRecordsFromMidLsn) {
  LogManager log;
  for (int i = 0; i < 5; ++i) log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.ForceAll().ok());
  const std::vector<LogRecord> tail = log.StableRecords(4).value();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].lsn, 4u);
  EXPECT_EQ(tail[1].lsn, 5u);
}

TEST(LogManagerTest, LatestStableCheckpointFound) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  log.Append(RecordType::kCheckpoint, {1});
  log.Append(RecordType::kSlotWrite, {});
  log.Append(RecordType::kCheckpoint, {2});
  log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.ForceAll().ok());
  const auto checkpoint = log.LatestStableCheckpoint().value();
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->lsn, 4u);
  EXPECT_EQ(checkpoint->payload, std::vector<uint8_t>{2});
}

TEST(LogManagerTest, NoCheckpointReturnsNullopt) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.ForceAll().ok());
  EXPECT_FALSE(log.LatestStableCheckpoint().value().has_value());
}

TEST(LogManagerTest, UnforcedCheckpointInvisible) {
  LogManager log;
  log.Append(RecordType::kCheckpoint, {});
  EXPECT_FALSE(log.LatestStableCheckpoint().value().has_value());
}

TEST(LogManagerTest, TornStableTailTruncatedNotFatal) {
  // A torn tail is no longer a fatal error: the scan salvages the valid
  // prefix and reports the damage, so recovery can proceed from it.
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1, 2, 3});
  log.Append(RecordType::kSlotWrite, {4, 5, 6});
  ASSERT_TRUE(log.ForceAll().ok());
  log.CorruptStableTail(3);  // cuts into the second record
  const StableScan scan = log.ScanStable(1);
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].lsn, 1u);
  EXPECT_EQ(scan.last_valid_lsn, 1u);
  EXPECT_GT(scan.damaged_bytes, 0u);
  // StableRecords returns the salvaged prefix instead of erroring.
  const auto records = log.StableRecords(1);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value().size(), 1u);
}

TEST(LogManagerTest, SalvageTruncatesTornTailAtLastValidRecord) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  log.Append(RecordType::kSlotWrite, {2});
  ASSERT_TRUE(log.ForceAll().ok());
  log.Append(RecordType::kCheckpoint, {});
  // The crash interrupts the force: only part of the checkpoint record
  // reaches stable storage.
  const size_t pending = log.PendingForceBytes();
  ASSERT_GT(pending, 4u);
  EXPECT_EQ(log.TearInFlightForce(pending - 3), pending - 3);
  EXPECT_EQ(log.stable_lsn(), 2u) << "torn bytes are not acknowledged";
  log.Crash();

  const SalvageResult salvage = log.SalvageTornTail();
  EXPECT_TRUE(salvage.torn);
  EXPECT_EQ(salvage.dropped_bytes, pending - 3);
  EXPECT_EQ(salvage.salvaged_records, 0u);
  EXPECT_EQ(salvage.stable_lsn_before, 2u);
  EXPECT_EQ(salvage.stable_lsn_after, 2u);
  EXPECT_EQ(log.StableRecords(1).value().size(), 2u);
  EXPECT_EQ(log.stats().torn_tail_truncations, 1u);
  EXPECT_EQ(log.stats().torn_bytes_dropped, pending - 3);
}

TEST(LogManagerTest, SalvageRecoversCompleteUnacknowledgedRecords) {
  // A torn force can still land complete records. They are genuine
  // survivors — the crash happened before the ack, but the bytes are
  // whole and checksummed — so stable_lsn RISES. This is safe because
  // no page flush can have depended on the unacknowledged force.
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  ASSERT_TRUE(log.ForceAll().ok());
  log.Append(RecordType::kSlotWrite, {2});
  log.Append(RecordType::kSlotWrite, {3});
  const size_t pending = log.PendingForceBytes();
  // Land ALL pending bytes: both records are complete on stable storage.
  EXPECT_EQ(log.TearInFlightForce(pending), pending);
  log.Crash();
  EXPECT_EQ(log.stable_lsn(), 1u);

  const SalvageResult salvage = log.SalvageTornTail();
  EXPECT_FALSE(salvage.torn) << "every stable byte decoded";
  EXPECT_EQ(salvage.salvaged_records, 2u);
  EXPECT_EQ(salvage.stable_lsn_after, 3u);
  EXPECT_EQ(log.stable_lsn(), 3u);
  EXPECT_EQ(log.StableRecords(1).value().size(), 3u);
  EXPECT_EQ(log.stats().salvaged_records, 2u);
}

TEST(LogManagerTest, SalvageAfterCorruptStableTailRescansFromScratch) {
  LogManager log;
  for (int i = 0; i < 5; ++i) {
    log.Append(RecordType::kSlotWrite, {static_cast<uint8_t>(i)});
  }
  ASSERT_TRUE(log.ForceAll().ok());
  log.CorruptStableTail(7);  // cuts into record 5
  log.Crash();
  const SalvageResult salvage = log.SalvageTornTail();
  EXPECT_TRUE(salvage.torn);
  EXPECT_EQ(salvage.stable_lsn_after, 4u);
  EXPECT_EQ(log.StableRecords(1).value().size(), 4u);
  // Appends continue from the salvaged LSN.
  EXPECT_EQ(log.Append(RecordType::kSlotWrite, {9}), 5u);
}

TEST(LogManagerTest, LatestStableCheckpointUsesCachedOffset) {
  LogManager log;
  for (int round = 0; round < 10; ++round) {
    log.Append(RecordType::kSlotWrite, {static_cast<uint8_t>(round)});
    log.Append(RecordType::kCheckpoint, {static_cast<uint8_t>(round)});
    ASSERT_TRUE(log.ForceAll().ok());
  }
  const auto checkpoint = log.LatestStableCheckpoint();
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(checkpoint.value().has_value());
  EXPECT_EQ(checkpoint.value()->lsn, 20u);
  EXPECT_EQ(checkpoint.value()->payload, std::vector<uint8_t>{9});
  EXPECT_EQ(log.stats().checkpoint_cache_hits, 1u);
  EXPECT_EQ(log.stats().checkpoint_full_scans, 0u);
}

TEST(LogManagerTest, LatestStableCheckpointFallsBackOnDamage) {
  LogManager log;
  log.Append(RecordType::kCheckpoint, {1});
  log.Append(RecordType::kSlotWrite, {2});
  log.Append(RecordType::kCheckpoint, {3});
  ASSERT_TRUE(log.ForceAll().ok());
  log.CorruptStableTail(2);  // damages the tail past the 2nd checkpoint
  const auto checkpoint = log.LatestStableCheckpoint();
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(checkpoint.value().has_value());
  EXPECT_EQ(checkpoint.value()->lsn, 1u) << "latest INTACT checkpoint";
  EXPECT_GE(log.stats().checkpoint_full_scans, 1u);
}

TEST(LogManagerTest, SalvageOnCleanLogIsFreeAndExact) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  ASSERT_TRUE(log.ForceAll().ok());
  log.Crash();
  const SalvageResult salvage = log.SalvageTornTail();
  EXPECT_FALSE(salvage.torn);
  EXPECT_EQ(salvage.dropped_bytes, 0u);
  EXPECT_EQ(salvage.salvaged_records, 0u);
  EXPECT_EQ(log.stable_lsn(), 1u);
}

TEST(LogManagerTest, StatsTrackForces) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  log.Append(RecordType::kSlotWrite, {});
  (void)log.Force(2);
  EXPECT_EQ(log.stats().appends, 2u);
  EXPECT_EQ(log.stats().forces, 1u);
  EXPECT_EQ(log.stats().forced_records, 2u);
  EXPECT_GT(log.stats().stable_bytes, 0u);
}

}  // namespace
}  // namespace redo::wal
