#include "wal/log_manager.h"

#include <gtest/gtest.h>

namespace redo::wal {
namespace {

TEST(LogManagerTest, AppendAssignsMonotonicLsns) {
  LogManager log;
  EXPECT_EQ(log.Append(RecordType::kSlotWrite, {}), 1u);
  EXPECT_EQ(log.Append(RecordType::kSlotWrite, {}), 2u);
  EXPECT_EQ(log.last_lsn(), 2u);
  EXPECT_EQ(log.stable_lsn(), 0u);
}

TEST(LogManagerTest, ForceMovesPrefixToStable) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  log.Append(RecordType::kSlotWrite, {2});
  log.Append(RecordType::kSlotWrite, {3});
  ASSERT_TRUE(log.Force(2).ok());
  EXPECT_EQ(log.stable_lsn(), 2u);

  Result<std::vector<LogRecord>> stable = log.StableRecords(1);
  ASSERT_TRUE(stable.ok());
  ASSERT_EQ(stable.value().size(), 2u);
  EXPECT_EQ(stable.value()[0].payload, std::vector<uint8_t>{1});
  EXPECT_EQ(stable.value()[1].payload, std::vector<uint8_t>{2});
}

TEST(LogManagerTest, ForceBeyondEndForcesEverything) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.Force(999).ok());
  EXPECT_EQ(log.stable_lsn(), 1u);
}

TEST(LogManagerTest, ForceIsIdempotent) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  ASSERT_TRUE(log.Force(1).ok());
  const uint64_t bytes = log.stats().stable_bytes;
  ASSERT_TRUE(log.Force(1).ok());
  EXPECT_EQ(log.stats().stable_bytes, bytes) << "no duplicate stable records";
  EXPECT_EQ(log.StableRecords(1).value().size(), 1u);
}

TEST(LogManagerTest, CrashDropsVolatileTailOnly) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1});
  log.Append(RecordType::kSlotWrite, {2});
  ASSERT_TRUE(log.Force(1).ok());
  log.Crash();
  EXPECT_EQ(log.stable_lsn(), 1u);
  EXPECT_EQ(log.last_lsn(), 1u) << "lost LSNs are reusable";
  EXPECT_EQ(log.StableRecords(1).value().size(), 1u);

  // Appends after recovery continue from the stable LSN.
  EXPECT_EQ(log.Append(RecordType::kSlotWrite, {3}), 2u);
}

TEST(LogManagerTest, StableRecordsFromMidLsn) {
  LogManager log;
  for (int i = 0; i < 5; ++i) log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.ForceAll().ok());
  const std::vector<LogRecord> tail = log.StableRecords(4).value();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].lsn, 4u);
  EXPECT_EQ(tail[1].lsn, 5u);
}

TEST(LogManagerTest, LatestStableCheckpointFound) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  log.Append(RecordType::kCheckpoint, {1});
  log.Append(RecordType::kSlotWrite, {});
  log.Append(RecordType::kCheckpoint, {2});
  log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.ForceAll().ok());
  const auto checkpoint = log.LatestStableCheckpoint().value();
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->lsn, 4u);
  EXPECT_EQ(checkpoint->payload, std::vector<uint8_t>{2});
}

TEST(LogManagerTest, NoCheckpointReturnsNullopt) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  ASSERT_TRUE(log.ForceAll().ok());
  EXPECT_FALSE(log.LatestStableCheckpoint().value().has_value());
}

TEST(LogManagerTest, UnforcedCheckpointInvisible) {
  LogManager log;
  log.Append(RecordType::kCheckpoint, {});
  EXPECT_FALSE(log.LatestStableCheckpoint().value().has_value());
}

TEST(LogManagerTest, TornStableTailDetected) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {1, 2, 3});
  ASSERT_TRUE(log.ForceAll().ok());
  log.CorruptStableTail(3);
  EXPECT_EQ(log.StableRecords(1).status().code(), StatusCode::kCorruption);
}

TEST(LogManagerTest, StatsTrackForces) {
  LogManager log;
  log.Append(RecordType::kSlotWrite, {});
  log.Append(RecordType::kSlotWrite, {});
  (void)log.Force(2);
  EXPECT_EQ(log.stats().appends, 2u);
  EXPECT_EQ(log.stats().forces, 1u);
  EXPECT_EQ(log.stats().forced_records, 2u);
  EXPECT_GT(log.stats().stable_bytes, 0u);
}

}  // namespace
}  // namespace redo::wal
