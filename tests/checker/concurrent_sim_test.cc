// The concurrent crash simulator's oracles, exercised across every
// recovery method: group-commit durability (no acked commit lost at any
// freeze point, even with the in-flight force torn) and the recovery
// criterion under concurrency (recovered state equals an LSN-ordered
// model replay of the surviving journal).

#include "checker/concurrent_sim.h"

#include <gtest/gtest.h>

#include "methods/method.h"

namespace redo::checker {
namespace {

using methods::MethodKind;

constexpr MethodKind kAllKinds[] = {
    MethodKind::kLogical,        MethodKind::kPhysical,
    MethodKind::kPhysiological,  MethodKind::kGeneralized,
    MethodKind::kPhysiologicalAnalysis, MethodKind::kPhysicalPartial,
};

ConcurrentSimOptions SmallRun() {
  ConcurrentSimOptions options;
  options.sessions = 3;
  options.ops_per_session = 40;
  options.num_pages = 12;
  options.cycles = 2;
  options.commit_every = 4;
  options.checkpoints_per_cycle = 2;
  return options;
}

class ConcurrentSimMethodTest : public ::testing::TestWithParam<MethodKind> {};

TEST_P(ConcurrentSimMethodTest, FreezeCrashRecoverVerifies) {
  const ConcurrentSimResult result =
      RunConcurrentCrashSim(GetParam(), SmallRun(), /*seed=*/1234);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.lost_acked_commits, 0u);
  EXPECT_EQ(result.cycles, 2u);
  EXPECT_GT(result.ops_applied, 0u);
  EXPECT_GT(result.pages_verified, 0u);
}

// The group-commit durability boundary (the tentpole's core promise):
// the crash tears the in-flight force at a random byte, salvage
// truncates the unacknowledged tail — and still every acknowledged
// commit must survive, for every method.
TEST_P(ConcurrentSimMethodTest, TornForceNeverLosesAckedCommits) {
  ConcurrentSimOptions options = SmallRun();
  options.tear_log_tail = true;
  options.cycles = 3;
  for (uint64_t seed : {7u, 99u}) {
    const ConcurrentSimResult result =
        RunConcurrentCrashSim(GetParam(), options, seed);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.ToString();
    EXPECT_EQ(result.lost_acked_commits, 0u) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ConcurrentSimMethodTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<MethodKind>& info) {
      std::string name = methods::MethodKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Regression: logical's checkpoint copies staged pages onto the main
// disk itself (not through the buffer pool). Write-error bursts used to
// abort that copy halfway — some pages post-checkpoint, no checkpoint
// record — and redo-all replay of a split then read future src content.
// The swing now commits via the forced record first and recovery heals
// uncopied pages from the staging area, so faulted runs must verify.
TEST(ConcurrentSimTest, LogicalCheckpointSwingSurvivesWriteBursts) {
  ConcurrentSimOptions options = SmallRun();
  options.sessions = 4;
  options.ops_per_session = 30;
  options.cycles = 4;
  options.disk_write_faults = true;
  for (uint64_t seed : {76u, 273u, 555u}) {
    const ConcurrentSimResult result =
        RunConcurrentCrashSim(MethodKind::kLogical, options, seed);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.ToString();
    EXPECT_EQ(result.lost_acked_commits, 0u) << "seed " << seed;
  }
}

TEST(ConcurrentSimTest, TransientDiskWriteBurstsAreAbsorbed) {
  // Checkpoints flush pages under write-error bursts shorter than the
  // pool's retry budget: the run must verify exactly like a clean one.
  ConcurrentSimOptions options = SmallRun();
  options.disk_write_faults = true;
  options.checkpoints_per_cycle = 4;
  const ConcurrentSimResult result =
      RunConcurrentCrashSim(MethodKind::kPhysical, options, /*seed=*/555);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.lost_acked_commits, 0u);
}

TEST(ConcurrentSimTest, BothInjectorsComposeWithFuzzyCheckpoints) {
  ConcurrentSimOptions options = SmallRun();
  options.tear_log_tail = true;
  options.disk_write_faults = true;
  options.fuzzy_checkpoints = true;
  options.cycles = 3;
  const ConcurrentSimResult result = RunConcurrentCrashSim(
      MethodKind::kPhysiologicalAnalysis, options, /*seed=*/31337);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.lost_acked_commits, 0u);
}

TEST(ConcurrentSimTest, MoreSessionsStillVerify) {
  ConcurrentSimOptions options = SmallRun();
  options.sessions = 8;
  options.ops_per_session = 24;
  const ConcurrentSimResult result =
      RunConcurrentCrashSim(MethodKind::kGeneralized, options, /*seed=*/42);
  EXPECT_TRUE(result.ok) << result.ToString();
}

}  // namespace
}  // namespace redo::checker
