// Heavier randomized stress: longer workloads, more seeds, adversarial
// knob settings, and B-tree crash-recovery with the formal checker in
// the loop. Kept within a few seconds total; the crash simulator's two
// oracles (formal invariant + byte-level prefix replay) do the judging.

#include <gtest/gtest.h>

#include <map>

#include "btree/btree.h"
#include "btree/node_format.h"
#include "checker/crash_sim.h"

namespace redo::checker {
namespace {

using methods::MethodKind;

const MethodKind kAllMethods[] = {
    MethodKind::kLogical,       MethodKind::kPhysical,
    MethodKind::kPhysiological, MethodKind::kGeneralized,
    MethodKind::kPhysiologicalAnalysis, MethodKind::kPhysicalPartial,
};

TEST(StressTest, LongRunsAllMethods) {
  for (const MethodKind kind : kAllMethods) {
    CrashSimOptions options;
    options.workload.num_pages = 24;
    options.cache_capacity = 5;
    options.ops_per_segment = 600;
    options.crashes = 3;
    options.recovery_crashes = 1;
    const CrashSimResult result = RunCrashSim(kind, options, 0xbeef);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
  }
}

TEST(StressTest, AdversarialKnobSweep) {
  // Corners of the workload space: split-heavy, flush-heavy, no forces,
  // checkpoint storms — each for every method, short segments.
  struct Knobs {
    double split, flush, checkpoint, force;
  };
  const Knobs corners[] = {
      {0.30, 0.05, 0.00, 0.00},  // split-heavy, nothing ever stabilized
      {0.05, 0.45, 0.01, 0.05},  // flush-heavy
      {0.10, 0.10, 0.25, 0.00},  // checkpoint storm
      {0.00, 0.00, 0.00, 0.30},  // forces only, no flushes
  };
  for (const MethodKind kind : kAllMethods) {
    for (size_t c = 0; c < std::size(corners); ++c) {
      CrashSimOptions options;
      options.workload.num_pages = 10;
      options.workload.split_probability = corners[c].split;
      options.workload.flush_probability = corners[c].flush;
      options.workload.checkpoint_probability = corners[c].checkpoint;
      options.workload.force_log_probability = corners[c].force;
      options.cache_capacity = 4;
      options.ops_per_segment = 150;
      options.crashes = 2;
      const CrashSimResult result = RunCrashSim(kind, options, 100 + c);
      EXPECT_TRUE(result.ok) << methods::MethodKindName(kind) << " corner " << c
                             << ": " << result.ToString();
    }
  }
}

TEST(StressTest, HighSkewHotPage) {
  // Zipf 1.5: nearly all traffic on one page — maximal version churn on
  // a single variable.
  for (const MethodKind kind : kAllMethods) {
    CrashSimOptions options;
    options.workload.num_pages = 8;
    options.workload.zipf_skew = 1.5;
    options.cache_capacity = 2;
    options.ops_per_segment = 300;
    options.crashes = 2;
    const CrashSimResult result = RunCrashSim(kind, options, 0x507);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
  }
}

TEST(StressTest, BtreeCrashLoopWithChecker) {
  // Interleave B-tree batches with crashes; the checker validates the
  // invariant at every crash and the tree revalidates after recovery.
  for (const MethodKind kind :
       {MethodKind::kPhysiological, MethodKind::kGeneralized,
        MethodKind::kPhysicalPartial}) {
    engine::MiniDbOptions options;
    options.num_pages = 128;
    options.cache_capacity = 8;
    engine::MiniDb db(options, methods::MakeMethod(kind, {options.num_pages}));
    engine::TraceRecorder trace(db.disk());
    db.Attach(engine::Instrumentation{&trace, nullptr});
    btree::Btree tree = btree::Btree::Create(&db).value();
    Rng rng(0xb7 + static_cast<uint64_t>(kind));
    std::map<int64_t, int64_t> reference;
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 400; ++i) {
        const int64_t key = rng.Range(0, 4000);
        if (rng.Chance(0.25)) {
          ASSERT_TRUE(tree.Remove(key).ok());
          reference.erase(key);
        } else {
          ASSERT_TRUE(tree.Insert(key, key + round).ok());
          reference[key] = key + round;
        }
        if (rng.Chance(0.05)) {
          ASSERT_TRUE(db.MaybeFlushPage(static_cast<storage::PageId>(
                            rng.Below(options.num_pages)))
                          .ok());
        }
      }
      ASSERT_TRUE(db.log().ForceAll().ok());
      db.Crash();
      const CheckResult check = CheckCrashState(db, trace);
      ASSERT_TRUE(check.ok)
          << methods::MethodKindName(kind) << ": " << check.ToString();
      ASSERT_TRUE(db.Recover().ok());
      ASSERT_TRUE(db.FlushEverything().ok());
      ASSERT_TRUE(db.Checkpoint().ok());
      trace.BeginEpoch(db.disk(), db.log().last_lsn() + 1);

      tree = btree::Btree::Open(&db).value();
      ASSERT_TRUE(tree.ValidateStructure().ok());
      ASSERT_EQ(tree.Size().value(), reference.size());
    }
    for (const auto& [k, v] : reference) {
      ASSERT_EQ(tree.Lookup(k).value().value(), v) << "key " << k;
    }
  }
}

}  // namespace
}  // namespace redo::checker
