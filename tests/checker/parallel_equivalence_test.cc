// The serial-vs-parallel redo equivalence oracle inside the crash
// simulator: at every crash point, recovery with 2/4/8 workers must
// produce byte-identical effective pages, page LSNs, and redo-verdict
// multisets to the serial run — under fault injection too.

#include <gtest/gtest.h>

#include "checker/crash_sim.h"

namespace redo::checker {
namespace {

using methods::MethodKind;

constexpr MethodKind kMatrixMethods[] = {
    MethodKind::kLogical, MethodKind::kPhysical, MethodKind::kGeneralized,
    MethodKind::kPhysiologicalAnalysis};

CrashSimOptions EquivalenceOptions() {
  CrashSimOptions options;
  options.workload.num_pages = 12;
  options.workload.split_probability = 0.10;
  options.workload.transfer_probability = 0.08;
  options.ops_per_segment = 120;
  options.crashes = 3;
  options.equivalence_workers = {2, 4, 8};
  return options;
}

TEST(ParallelEquivalenceTest, FaultFreeCyclesNeverDiverge) {
  for (const MethodKind kind : kMatrixMethods) {
    const CrashSimResult result = RunCrashSim(kind, EquivalenceOptions(), 31);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
    // 3 crash points x 3 worker counts, all compared, none diverging.
    EXPECT_EQ(result.equivalence_checks, 9u) << methods::MethodKindName(kind);
    EXPECT_EQ(result.equivalence_divergences, 0u)
        << methods::MethodKindName(kind);
  }
}

TEST(ParallelEquivalenceTest, DiskFaultCyclesNeverDiverge) {
  CrashSimOptions options = EquivalenceOptions();
  options.faults.enabled = true;
  for (const MethodKind kind : kMatrixMethods) {
    const CrashSimResult result = RunCrashSim(kind, options, 47);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
    EXPECT_EQ(result.equivalence_checks, 9u) << methods::MethodKindName(kind);
    EXPECT_EQ(result.equivalence_divergences, 0u)
        << methods::MethodKindName(kind);
  }
}

TEST(ParallelEquivalenceTest, LogMediaFaultCyclesCompareNonDegradedCycles) {
  CrashSimOptions options = EquivalenceOptions();
  options.faults.enabled = true;
  options.faults.log_segment_bytes = 4096;
  for (const MethodKind kind :
       {MethodKind::kPhysical, MethodKind::kGeneralized}) {
    const CrashSimResult result = RunCrashSim(kind, options, 53);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
    // Degraded cycles (ladder rung 2/3) skip the oracle; whatever ran
    // must agree with serial.
    EXPECT_EQ(result.equivalence_divergences, 0u)
        << methods::MethodKindName(kind);
  }
}

TEST(ParallelEquivalenceTest, BoundedCacheCyclesNeverDiverge) {
  CrashSimOptions options = EquivalenceOptions();
  options.cache_capacity = 3;  // recovery evicts and flushes mid-redo
  for (const MethodKind kind :
       {MethodKind::kPhysical, MethodKind::kGeneralized,
        MethodKind::kPhysiologicalAnalysis}) {
    const CrashSimResult result = RunCrashSim(kind, options, 61);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
    EXPECT_EQ(result.equivalence_checks, 9u) << methods::MethodKindName(kind);
    EXPECT_EQ(result.equivalence_divergences, 0u)
        << methods::MethodKindName(kind);
  }
}

TEST(ParallelEquivalenceTest, OracleIsDeterministicInSeed) {
  const CrashSimResult a =
      RunCrashSim(MethodKind::kGeneralized, EquivalenceOptions(), 9);
  const CrashSimResult b =
      RunCrashSim(MethodKind::kGeneralized, EquivalenceOptions(), 9);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.equivalence_checks, 9u);
}

}  // namespace
}  // namespace redo::checker
