// The recovery checker: the formal model as an oracle over the engine.

#include "checker/recovery_checker.h"

#include <gtest/gtest.h>

#include <memory>

namespace redo::checker {
namespace {

using engine::MiniDb;
using engine::TraceRecorder;
using methods::MethodKind;

constexpr size_t kPages = 8;

std::unique_ptr<MiniDb> MakeDb(MethodKind kind) {
  engine::MiniDbOptions options;
  options.num_pages = kPages;
  options.cache_capacity = 0;
  return std::make_unique<MiniDb>(options, methods::MakeMethod(kind, {kPages}));
}

class CheckerMethodTest : public ::testing::TestWithParam<MethodKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllMethods, CheckerMethodTest,
    ::testing::Values(MethodKind::kLogical, MethodKind::kPhysical,
                      MethodKind::kPhysiological, MethodKind::kGeneralized,
                      MethodKind::kPhysiologicalAnalysis,
                      MethodKind::kPhysicalPartial),
    [](const ::testing::TestParamInfo<MethodKind>& info) {
      std::string name = methods::MethodKindName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST_P(CheckerMethodTest, CleanCrashSatisfiesInvariant) {
  auto db = MakeDb(GetParam());
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->WriteSlot(2, 0, 6).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.stable_ops, 2u);
  EXPECT_TRUE(result.invariant.holds);
  EXPECT_TRUE(result.invariant.recovered_final_state);
}

TEST_P(CheckerMethodTest, UnforcedTailIsInvisibleAndFine) {
  auto db = MakeDb(GetParam());
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  Result<core::Lsn> first = db->WriteSlot(1, 0, 5);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(db->log().Force(first.value()).ok());
  ASSERT_TRUE(db->WriteSlot(1, 1, 6).ok());  // lost at crash
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.stable_ops, 1u);
}

TEST_P(CheckerMethodTest, CheckpointedStateSatisfiesInvariant) {
  auto db = MakeDb(GetParam());
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->WriteSlot(i % kPages, 0, i).ok());
  }
  // Fuzzy checkpoints only advance the redo point past flushed pages.
  ASSERT_TRUE(db->FlushEverything().ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->WriteSlot(3, 3, 99).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_GT(result.checkpointed_ops, 0u);
}

TEST_P(CheckerMethodTest, SplitCrashSatisfiesInvariant) {
  auto db = MakeDb(GetParam());
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(0, storage::Page::NumSlots() / 2, 41).ok());
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 0, 4}).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  if (GetParam() != MethodKind::kLogical) {
    // Flush in the (only legal) order so the crash state is interesting.
    ASSERT_TRUE(db->pool().FlushPageCascading(0).ok());
  }
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_TRUE(result.ok) << result.ToString();
}

// Sabotage: write a page to disk directly, bypassing the WAL, with
// contents the trace never saw. The checker must flag it.
TEST_P(CheckerMethodTest, DetectsTornOrRogueDiskWrite) {
  auto db = MakeDb(GetParam());
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());

  storage::Page rogue;
  rogue.WriteSlot(9, 12345);
  rogue.set_lsn(777);
  ASSERT_TRUE(db->disk().WritePage(2, rogue).ok());

  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems[0].find("page 2"), std::string::npos)
      << result.ToString();
}

// Sabotage: flush a page whose log record is NOT stable by bypassing the
// WAL hook (writing the cached page straight to disk). The checker must
// call out the write-ahead-log violation.
TEST_P(CheckerMethodTest, DetectsWalViolation) {
  auto db = MakeDb(GetParam());
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());  // record NOT forced
  storage::Page* cached = db->FetchPage(1).value();
  ASSERT_TRUE(db->disk().WritePage(1, *cached).ok());  // rogue direct write

  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_FALSE(result.ok);
  bool found = false;
  for (const std::string& p : result.problems) {
    if (p.find("WAL violation") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << result.ToString();
}

// Sabotage: make the stable state lie about installation — install the
// *second* of two dependent updates without the first. For LSN methods
// this shows up as a violated invariant.
TEST(CheckerTest, DetectsInstallationOrderViolation) {
  auto db = MakeDb(MethodKind::kGeneralized);
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  // A split: dst must reach disk before src's rewrite does.
  ASSERT_TRUE(db->WriteSlot(0, storage::Page::NumSlots() / 2, 41).ok());
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 0, 4}).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  // Bypass the buffer pool's constraint: write the rewritten src page
  // directly to disk while dst is still only in cache.
  storage::Page* src = db->FetchPage(0).value();
  ASSERT_TRUE(db->disk().WritePage(0, *src).ok());

  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_FALSE(result.ok) << "the checker must catch the careful-write-order "
                             "violation the paper warns about";
  EXPECT_TRUE(result.model_built) << result.ToString();
  EXPECT_FALSE(result.invariant.holds);
  EXPECT_FALSE(result.invariant.recovered_final_state)
      << "and recovery indeed loses data: " << result.ToString();
}

// The same violation under the physiological method is harmless: the new
// page was logged physically (blind), so installing src first is legal.
TEST(CheckerTest, PhysiologicalToleratesOldPageFirst) {
  auto db = MakeDb(MethodKind::kPhysiological);
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(0, storage::Page::NumSlots() / 2, 41).ok());
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 0, 4}).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  ASSERT_TRUE(db->pool().FlushPage(0).ok()) << "old page first is fine here";
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_TRUE(result.ok) << result.ToString();
}

TEST(CheckerTest, DiagnosisStateUnexplainable) {
  // The careful-write-order sabotage: no installation prefix can explain
  // the stable state at all.
  auto db = MakeDb(MethodKind::kGeneralized);
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(0, storage::Page::NumSlots() / 2, 41).ok());
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 0, 4}).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  storage::Page* src = db->FetchPage(0).value();
  ASSERT_TRUE(db->disk().WritePage(0, *src).ok());  // bypass the constraint
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.failure_locus,
            CheckResult::FailureLocus::kStateUnexplainable);
  EXPECT_NE(result.ToString().find("NO installation prefix"),
            std::string::npos);
}

TEST(CheckerTest, DiagnosisRedoTestWrong) {
  // A lying checkpoint: the state is perfectly explainable (a legal
  // partial flush), but the checkpoint record claims everything is
  // installed so the redo test skips records it must replay.
  auto db = MakeDb(MethodKind::kPhysiological);
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->WriteSlot(2, 0, 6).ok());
  ASSERT_TRUE(db->MaybeFlushPage(1).ok());  // page 2 not installed
  // Forge a checkpoint asserting nothing needs redo.
  wal::PayloadWriter forged;
  forged.U64(db->log().last_lsn() + 2);
  db->log().Append(wal::RecordType::kCheckpoint, forged.Take());
  ASSERT_TRUE(db->log().ForceAll().ok());
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.failure_locus, CheckResult::FailureLocus::kRedoTestWrong);
  EXPECT_NE(result.ToString().find("redo test / checkpoint"),
            std::string::npos);
}

TEST(CheckerTest, EpochBoundariesAbsorbOldHistory) {
  auto db = MakeDb(MethodKind::kPhysiological);
  TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->FlushEverything().ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  // New epoch: the old op is pre-history.
  trace.BeginEpoch(db->disk(), db->log().last_lsn() + 1);
  ASSERT_TRUE(db->WriteSlot(1, 1, 6).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  db->Crash();
  const CheckResult result = CheckCrashState(*db, trace);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.stable_ops, 1u) << "only the in-epoch op is modeled";
}

}  // namespace
}  // namespace redo::checker
