// The crash-recover-verify loop across all methods and many seeds: the
// §6 claim that every method maintains the recovery invariant, validated
// by both the formal checker and the byte-level oracle.

#include "checker/crash_sim.h"

#include <gtest/gtest.h>

namespace redo::checker {
namespace {

using methods::MethodKind;

struct MatrixParam {
  MethodKind method;
  uint64_t seed;
};

class CrashSimMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

std::vector<MatrixParam> MatrixParams() {
  std::vector<MatrixParam> params;
  for (const MethodKind kind :
       {MethodKind::kLogical, MethodKind::kPhysical, MethodKind::kPhysiological,
        MethodKind::kGeneralized, MethodKind::kPhysiologicalAnalysis,
        MethodKind::kPhysicalPartial}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      params.push_back(MatrixParam{kind, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, CrashSimMatrixTest, ::testing::ValuesIn(MatrixParams()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = methods::MethodKindName(info.param.method);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "Seed" + std::to_string(info.param.seed);
    });

TEST_P(CrashSimMatrixTest, InvariantHoldsAndRecoveryIsExact) {
  CrashSimOptions options;
  options.workload.num_pages = 12;
  options.ops_per_segment = 120;
  options.crashes = 3;
  const CrashSimResult result =
      RunCrashSim(GetParam().method, options, GetParam().seed);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.crashes, 3u);
  EXPECT_EQ(result.checker_runs, 3u);
  EXPECT_GT(result.recovered_pages_verified, 0u);
}

TEST(CrashSimTest, TinyCacheStressesEvictionPaths) {
  CrashSimOptions options;
  options.workload.num_pages = 10;
  options.cache_capacity = 2;  // constant eviction traffic
  options.ops_per_segment = 150;
  options.crashes = 2;
  for (const MethodKind kind : {MethodKind::kPhysical, MethodKind::kPhysiological,
                                MethodKind::kGeneralized, MethodKind::kPhysiologicalAnalysis,
        MethodKind::kPhysicalPartial}) {
    const CrashSimResult result = RunCrashSim(kind, options, 77);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
  }
}

TEST(CrashSimTest, HeavySplitsExerciseWriteOrdering) {
  CrashSimOptions options;
  options.workload.num_pages = 8;
  options.workload.split_probability = 0.25;
  options.workload.flush_probability = 0.25;
  options.ops_per_segment = 120;
  options.crashes = 3;
  const CrashSimResult result =
      RunCrashSim(MethodKind::kGeneralized, options, 1234);
  EXPECT_TRUE(result.ok) << result.ToString();
}

TEST(CrashSimTest, NoCheckpointsEver) {
  CrashSimOptions options;
  options.workload.num_pages = 8;
  options.workload.checkpoint_probability = 0.0;
  options.ops_per_segment = 100;
  options.crashes = 2;
  for (const MethodKind kind :
       {MethodKind::kLogical, MethodKind::kPhysical, MethodKind::kPhysiological,
        MethodKind::kGeneralized, MethodKind::kPhysiologicalAnalysis,
        MethodKind::kPhysicalPartial}) {
    const CrashSimResult result = RunCrashSim(kind, options, 5);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
  }
}

TEST(CrashSimTest, FrequentCheckpointsKeepRedoShort) {
  CrashSimOptions options;
  options.workload.num_pages = 8;
  options.workload.checkpoint_probability = 0.2;
  options.ops_per_segment = 100;
  options.crashes = 2;
  const CrashSimResult result =
      RunCrashSim(MethodKind::kPhysiological, options, 6);
  EXPECT_TRUE(result.ok) << result.ToString();
}

TEST(CrashSimTest, CrashesDuringRecoveryAreSurvivable) {
  CrashSimOptions options;
  options.workload.num_pages = 10;
  options.cache_capacity = 3;  // recovery itself evicts and flushes
  options.ops_per_segment = 120;
  options.crashes = 2;
  options.recovery_crashes = 3;
  for (const MethodKind kind :
       {MethodKind::kLogical, MethodKind::kPhysical, MethodKind::kPhysiological,
        MethodKind::kGeneralized, MethodKind::kPhysiologicalAnalysis,
        MethodKind::kPhysicalPartial}) {
    const CrashSimResult result = RunCrashSim(kind, options, 21);
    EXPECT_TRUE(result.ok)
        << methods::MethodKindName(kind) << ": " << result.ToString();
    EXPECT_EQ(result.checker_runs, 2u * (1 + 3))
        << "checker must run after every re-crash too";
  }
}

TEST(CrashSimTest, DeterministicInSeed) {
  CrashSimOptions options;
  options.workload.num_pages = 8;
  options.ops_per_segment = 60;
  options.crashes = 2;
  const CrashSimResult a = RunCrashSim(MethodKind::kGeneralized, options, 9);
  const CrashSimResult b = RunCrashSim(MethodKind::kGeneralized, options, 9);
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace redo::checker
