// The fault-model torture tests: every recovery method must come back
// from a damaged stable log (torn tail truncated, salvaged prefix
// replayed) and must survive randomized disk-fault schedules — torn page
// writes, write-error bursts, sticky reads, torn log forces — with the
// invariant-holds-or-detected guarantee: faults may cost performance and
// require healing, but recovery still matches the byte-level oracle and
// nothing is ever silently wrong.

#include <gtest/gtest.h>

#include <algorithm>

#include "checker/crash_sim.h"
#include "engine/minidb.h"

namespace redo::checker {
namespace {

using methods::MethodKind;

const MethodKind kAllMethods[] = {
    MethodKind::kLogical,       MethodKind::kPhysical,
    MethodKind::kPhysiological, MethodKind::kGeneralized,
    MethodKind::kPhysiologicalAnalysis, MethodKind::kPhysicalPartial,
};

TEST(CorruptTailRecoveryTest, EveryMethodRecoversFromTruncatedTail) {
  for (const MethodKind kind : kAllMethods) {
    SCOPED_TRACE(methods::MethodKindName(kind));
    engine::MiniDbOptions db_options;
    db_options.num_pages = 8;
    db_options.cache_capacity = 0;
    engine::MiniDb db(db_options, methods::MakeMethod(kind, {8}));

    ASSERT_TRUE(db.WriteSlot(1, 0, 100).ok());
    ASSERT_TRUE(db.WriteSlot(2, 0, 200).ok());
    ASSERT_TRUE(db.log().ForceAll().ok());
    ASSERT_TRUE(db.WriteSlot(3, 0, 300).ok());
    ASSERT_TRUE(db.log().ForceAll().ok());

    db.Crash();
    // The tail of the stable log is damaged: the final record (LSN 3)
    // loses its last bytes. Before torn-tail tolerance this was a fatal
    // recovery error; now salvage truncates to the valid prefix.
    db.log().CorruptStableTail(3);
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(db.log().stable_lsn(), 2u);

    EXPECT_EQ(db.ReadSlot(1, 0).value(), 100);
    EXPECT_EQ(db.ReadSlot(2, 0).value(), 200);
    EXPECT_EQ(db.ReadSlot(3, 0).value(), 0)
        << "the truncated operation must NOT be replayed";

    // The salvaged log keeps working: new operations, new crashes.
    ASSERT_TRUE(db.WriteSlot(3, 0, 301).ok());
    ASSERT_TRUE(db.log().ForceAll().ok());
    db.Crash();
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(db.ReadSlot(3, 0).value(), 301);
  }
}

TEST(CorruptTailRecoveryTest, SalvageRaisesStableLsnOverCompleteTornRecords) {
  engine::MiniDbOptions db_options;
  db_options.num_pages = 4;
  db_options.cache_capacity = 0;
  engine::MiniDb db(db_options,
                    methods::MakeMethod(MethodKind::kPhysical, {4}));
  ASSERT_TRUE(db.WriteSlot(1, 0, 10).ok());
  ASSERT_TRUE(db.log().ForceAll().ok());
  ASSERT_TRUE(db.WriteSlot(2, 0, 20).ok());
  // The crash interrupts the in-flight force AFTER the record's bytes
  // are down but BEFORE the ack: the record is whole and salvageable.
  const size_t pending = db.log().PendingForceBytes();
  ASSERT_EQ(db.log().TearInFlightForce(pending), pending);
  db.Crash();
  ASSERT_EQ(db.log().stable_lsn(), 1u);
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.log().stable_lsn(), 2u) << "complete unacked record salvaged";
  EXPECT_EQ(db.ReadSlot(2, 0).value(), 20) << "and replayed";
}

struct FaultMatrixParam {
  MethodKind method;
  uint64_t seed;
};

class FaultMatrixTest : public ::testing::TestWithParam<FaultMatrixParam> {};

std::vector<FaultMatrixParam> FaultMatrixParams() {
  std::vector<FaultMatrixParam> params;
  for (const MethodKind kind : kAllMethods) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      params.push_back(FaultMatrixParam{kind, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, FaultMatrixTest, ::testing::ValuesIn(FaultMatrixParams()),
    [](const ::testing::TestParamInfo<FaultMatrixParam>& info) {
      std::string name = methods::MethodKindName(info.param.method);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "Seed" + std::to_string(info.param.seed);
    });

TEST_P(FaultMatrixTest, NoSilentCorruptionUnderFaultSchedule) {
  CrashSimOptions options;
  options.workload.num_pages = 12;
  options.cache_capacity = 6;
  options.ops_per_segment = 120;
  options.crashes = 3;
  options.recovery_crashes = 1;
  options.faults.enabled = true;
  const CrashSimResult result =
      RunCrashSim(GetParam().method, options, GetParam().seed);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.silent_corruptions, 0u);
  EXPECT_GT(result.faults_injected, 0u) << "the schedule actually fired";
  EXPECT_EQ(result.crashes, 3u);
  EXPECT_GT(result.recovered_pages_verified, 0u);
}

// ---- Log-media faults: the stable log BODY is damaged too ----
// With log_segment_bytes > 0 the database runs a segmented, mirrored,
// archived log and every crash also rolls bit rot / lost copies / torn
// seals over the sealed segments. The contract tightens: every damaged
// cycle must resolve at an explicit degradation-ladder rung, and
// recovery must still match the byte-level oracle exactly.

class LogMediaMatrixTest : public ::testing::TestWithParam<FaultMatrixParam> {};

INSTANTIATE_TEST_SUITE_P(
    Methods, LogMediaMatrixTest,
    ::testing::ValuesIn(FaultMatrixParams()),
    [](const ::testing::TestParamInfo<FaultMatrixParam>& info) {
      std::string name = methods::MethodKindName(info.param.method);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "Seed" + std::to_string(info.param.seed);
    });

CrashSimOptions LogMediaOptions() {
  CrashSimOptions options;
  options.workload.num_pages = 12;
  options.cache_capacity = 6;
  options.ops_per_segment = 120;
  options.crashes = 3;
  options.faults.enabled = true;
  // Small segments so every cycle seals (and damages) several; a fresh
  // backup every cycle so rung 2 always has a current anchor; truncation
  // so the archive-only prefix is exercised.
  options.faults.log_segment_bytes = 448;
  options.faults.backup_interval = 1;
  options.faults.truncate_at_backup = true;
  return options;
}

TEST_P(LogMediaMatrixTest, EveryDamagedCycleResolvesAtAnExplicitRung) {
  const CrashSimResult result = RunCrashSim(
      GetParam().method, LogMediaOptions(), GetParam().seed);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.silent_corruptions, 0u);
  EXPECT_GT(result.segments_sealed, 0u) << "the segmented log actually ran";
  EXPECT_GT(result.backups_taken, 0u);
  // Accounting sanity: ladder cycles only happen when faults landed.
  if (result.ladder_mirror_cycles + result.ladder_media_cycles +
          result.ladder_refusals >
      0) {
    EXPECT_GT(result.log_faults_injected, 0u);
  }
}

TEST(LogMediaMatrixTest, ScheduleInjectsAndExercisesTheLadderAcrossSeeds) {
  // One seed may dodge a rung; across methods x seeds the schedule must
  // inject log faults and resolve damage through the ladder.
  size_t injected = 0, ladder_cycles = 0, repairs = 0;
  for (const MethodKind kind : {MethodKind::kLogical, MethodKind::kGeneralized}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      const CrashSimResult result =
          RunCrashSim(kind, LogMediaOptions(), seed);
      ASSERT_TRUE(result.ok) << result.ToString();
      injected += result.log_faults_injected;
      repairs += result.log_scrub_repairs;
      ladder_cycles += result.ladder_mirror_cycles +
                       result.ladder_media_cycles + result.ladder_refusals;
    }
  }
  EXPECT_GT(injected, 0u);
  EXPECT_GT(repairs, 0u) << "scrub must repair from mirrors/archive";
  EXPECT_GT(ladder_cycles, 0u) << "some cycle must degrade explicitly";
}

TEST(LogMediaMatrixTest, LogMediaRunsAreDeterministicInSeed) {
  const CrashSimResult first =
      RunCrashSim(MethodKind::kPhysiological, LogMediaOptions(), 7);
  const CrashSimResult second =
      RunCrashSim(MethodKind::kPhysiological, LogMediaOptions(), 7);
  EXPECT_TRUE(first.ok) << first.ToString();
  EXPECT_EQ(first.ToString(), second.ToString());
}

TEST(LogMediaMatrixTest, FlatLogConfigInjectsNoLogFaults) {
  CrashSimOptions options = LogMediaOptions();
  options.faults.log_segment_bytes = 0;  // flat PR-1 log
  const CrashSimResult result =
      RunCrashSim(MethodKind::kGeneralized, options, 11);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.log_faults_injected, 0u);
  EXPECT_EQ(result.segments_sealed, 0u);
  EXPECT_EQ(result.ladder_media_cycles + result.ladder_refusals, 0u);
}

TEST(FaultMatrixTest, DisabledFaultsInjectNothingAndStayDeterministic) {
  // With the fault plumbing compiled in but disabled, the simulator must
  // behave like the plain crash sim: no fault counters fire, and the run
  // is a pure function of the seed.
  CrashSimOptions options;
  options.workload.num_pages = 12;
  options.ops_per_segment = 100;
  options.crashes = 2;
  options.faults.enabled = false;
  const CrashSimResult first =
      RunCrashSim(MethodKind::kPhysical, options, /*seed=*/42);
  const CrashSimResult second =
      RunCrashSim(MethodKind::kPhysical, options, /*seed=*/42);
  EXPECT_TRUE(first.ok) << first.ToString();
  EXPECT_TRUE(second.ok) << second.ToString();
  EXPECT_EQ(first.actions_executed, second.actions_executed);
  EXPECT_EQ(first.stable_ops_at_crashes, second.stable_ops_at_crashes);
  EXPECT_EQ(first.faults_injected, 0u);
  EXPECT_EQ(first.faults_detected, 0u);
  EXPECT_EQ(first.torn_tails, 0u);
  EXPECT_EQ(first.pages_healed, 0u);
}

}  // namespace
}  // namespace redo::checker
