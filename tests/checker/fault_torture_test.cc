// The fault-model torture tests: every recovery method must come back
// from a damaged stable log (torn tail truncated, salvaged prefix
// replayed) and must survive randomized disk-fault schedules — torn page
// writes, write-error bursts, sticky reads, torn log forces — with the
// invariant-holds-or-detected guarantee: faults may cost performance and
// require healing, but recovery still matches the byte-level oracle and
// nothing is ever silently wrong.

#include <gtest/gtest.h>

#include <algorithm>

#include "checker/crash_sim.h"
#include "engine/minidb.h"

namespace redo::checker {
namespace {

using methods::MethodKind;

const MethodKind kAllMethods[] = {
    MethodKind::kLogical,       MethodKind::kPhysical,
    MethodKind::kPhysiological, MethodKind::kGeneralized,
    MethodKind::kPhysiologicalAnalysis, MethodKind::kPhysicalPartial,
};

TEST(CorruptTailRecoveryTest, EveryMethodRecoversFromTruncatedTail) {
  for (const MethodKind kind : kAllMethods) {
    SCOPED_TRACE(methods::MethodKindName(kind));
    engine::MiniDbOptions db_options;
    db_options.num_pages = 8;
    db_options.cache_capacity = 0;
    engine::MiniDb db(db_options, methods::MakeMethod(kind, 8));

    ASSERT_TRUE(db.WriteSlot(1, 0, 100).ok());
    ASSERT_TRUE(db.WriteSlot(2, 0, 200).ok());
    ASSERT_TRUE(db.log().ForceAll().ok());
    ASSERT_TRUE(db.WriteSlot(3, 0, 300).ok());
    ASSERT_TRUE(db.log().ForceAll().ok());

    db.Crash();
    // The tail of the stable log is damaged: the final record (LSN 3)
    // loses its last bytes. Before torn-tail tolerance this was a fatal
    // recovery error; now salvage truncates to the valid prefix.
    db.log().CorruptStableTail(3);
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(db.log().stable_lsn(), 2u);

    EXPECT_EQ(db.ReadSlot(1, 0).value(), 100);
    EXPECT_EQ(db.ReadSlot(2, 0).value(), 200);
    EXPECT_EQ(db.ReadSlot(3, 0).value(), 0)
        << "the truncated operation must NOT be replayed";

    // The salvaged log keeps working: new operations, new crashes.
    ASSERT_TRUE(db.WriteSlot(3, 0, 301).ok());
    ASSERT_TRUE(db.log().ForceAll().ok());
    db.Crash();
    ASSERT_TRUE(db.Recover().ok());
    EXPECT_EQ(db.ReadSlot(3, 0).value(), 301);
  }
}

TEST(CorruptTailRecoveryTest, SalvageRaisesStableLsnOverCompleteTornRecords) {
  engine::MiniDbOptions db_options;
  db_options.num_pages = 4;
  db_options.cache_capacity = 0;
  engine::MiniDb db(db_options,
                    methods::MakeMethod(MethodKind::kPhysical, 4));
  ASSERT_TRUE(db.WriteSlot(1, 0, 10).ok());
  ASSERT_TRUE(db.log().ForceAll().ok());
  ASSERT_TRUE(db.WriteSlot(2, 0, 20).ok());
  // The crash interrupts the in-flight force AFTER the record's bytes
  // are down but BEFORE the ack: the record is whole and salvageable.
  const size_t pending = db.log().PendingForceBytes();
  ASSERT_EQ(db.log().TearInFlightForce(pending), pending);
  db.Crash();
  ASSERT_EQ(db.log().stable_lsn(), 1u);
  ASSERT_TRUE(db.Recover().ok());
  EXPECT_EQ(db.log().stable_lsn(), 2u) << "complete unacked record salvaged";
  EXPECT_EQ(db.ReadSlot(2, 0).value(), 20) << "and replayed";
}

struct FaultMatrixParam {
  MethodKind method;
  uint64_t seed;
};

class FaultMatrixTest : public ::testing::TestWithParam<FaultMatrixParam> {};

std::vector<FaultMatrixParam> FaultMatrixParams() {
  std::vector<FaultMatrixParam> params;
  for (const MethodKind kind : kAllMethods) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      params.push_back(FaultMatrixParam{kind, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, FaultMatrixTest, ::testing::ValuesIn(FaultMatrixParams()),
    [](const ::testing::TestParamInfo<FaultMatrixParam>& info) {
      std::string name = methods::MethodKindName(info.param.method);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "Seed" + std::to_string(info.param.seed);
    });

TEST_P(FaultMatrixTest, NoSilentCorruptionUnderFaultSchedule) {
  CrashSimOptions options;
  options.workload.num_pages = 12;
  options.cache_capacity = 6;
  options.ops_per_segment = 120;
  options.crashes = 3;
  options.recovery_crashes = 1;
  options.faults.enabled = true;
  const CrashSimResult result =
      RunCrashSim(GetParam().method, options, GetParam().seed);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.silent_corruptions, 0u);
  EXPECT_GT(result.faults_injected, 0u) << "the schedule actually fired";
  EXPECT_EQ(result.crashes, 3u);
  EXPECT_GT(result.recovered_pages_verified, 0u);
}

TEST(FaultMatrixTest, DisabledFaultsInjectNothingAndStayDeterministic) {
  // With the fault plumbing compiled in but disabled, the simulator must
  // behave like the plain crash sim: no fault counters fire, and the run
  // is a pure function of the seed.
  CrashSimOptions options;
  options.workload.num_pages = 12;
  options.ops_per_segment = 100;
  options.crashes = 2;
  options.faults.enabled = false;
  const CrashSimResult first =
      RunCrashSim(MethodKind::kPhysical, options, /*seed=*/42);
  const CrashSimResult second =
      RunCrashSim(MethodKind::kPhysical, options, /*seed=*/42);
  EXPECT_TRUE(first.ok) << first.ToString();
  EXPECT_TRUE(second.ok) << second.ToString();
  EXPECT_EQ(first.actions_executed, second.actions_executed);
  EXPECT_EQ(first.stable_ops_at_crashes, second.stable_ops_at_crashes);
  EXPECT_EQ(first.faults_injected, 0u);
  EXPECT_EQ(first.faults_detected, 0u);
  EXPECT_EQ(first.torn_tails, 0u);
  EXPECT_EQ(first.pages_healed, 0u);
}

}  // namespace
}  // namespace redo::checker
