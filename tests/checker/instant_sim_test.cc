// The concurrent simulator's instant-restart mode (recover WHILE
// loading): after each crash the engine reopens with RecoverInstant()
// and a full worker round runs against it while redo is still draining
// — then WaitUntilRecovered() quiesces the drain and the standard
// oracles check the combined state. Serving traffic must not change
// what recovery produces: no acked commit (pre-crash or mid-drain) may
// be lost, and the recovered state must equal the LSN-ordered model
// replay of the surviving journal. A double-crash injector strikes a
// second time during serving — half the strikes before any traffic,
// half mid-drain with sessions in flight.

#include "checker/concurrent_sim.h"

#include <gtest/gtest.h>

#include "methods/method.h"

namespace redo::checker {
namespace {

using methods::MethodKind;

constexpr MethodKind kAllKinds[] = {
    MethodKind::kLogical,        MethodKind::kPhysical,
    MethodKind::kPhysiological,  MethodKind::kGeneralized,
    MethodKind::kPhysiologicalAnalysis, MethodKind::kPhysicalPartial,
};

ConcurrentSimOptions InstantRun() {
  ConcurrentSimOptions options;
  options.sessions = 3;
  options.ops_per_session = 24;
  options.num_pages = 12;
  options.commit_every = 4;
  options.checkpoints_per_cycle = 2;
  options.instant_restart = true;
  options.instant_drain_workers = 2;
  return options;
}

class InstantSimMethodTest : public ::testing::TestWithParam<MethodKind> {};

// The acceptance bar for the instant-restart tentpole: >= 200
// recover-while-loading cycles across the six methods (34 each), with
// the tail torn at every crash and a 30% double-crash rate during
// serving. Every cycle runs both oracles.
TEST_P(InstantSimMethodTest, RecoverWhileLoadingVerifies) {
  ConcurrentSimOptions options = InstantRun();
  options.cycles = 34;
  options.tear_log_tail = true;
  options.double_crash_percent = 30;
  const ConcurrentSimResult result =
      RunConcurrentCrashSim(GetParam(), options, /*seed=*/4242);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.lost_acked_commits, 0u);
  EXPECT_EQ(result.cycles, 34u);
  // Every cycle reopened instantly at least once; double crashes add
  // further restarts on top.
  EXPECT_GE(result.instant_restarts, 34u);
  EXPECT_GT(result.pages_verified, 0u);
}

// Both fault injectors compose with serving-while-redoing and fuzzy
// checkpoints in the pre-crash rounds.
TEST(InstantSimTest, InjectorsComposeWithInstantRestart) {
  ConcurrentSimOptions options = InstantRun();
  options.cycles = 3;
  options.tear_log_tail = true;
  options.disk_write_faults = true;
  options.fuzzy_checkpoints = true;
  options.double_crash_percent = 50;
  const ConcurrentSimResult result = RunConcurrentCrashSim(
      MethodKind::kPhysiologicalAnalysis, options, /*seed=*/90210);
  EXPECT_TRUE(result.ok) << result.ToString();
  EXPECT_EQ(result.lost_acked_commits, 0u);
  EXPECT_GE(result.instant_restarts, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, InstantSimMethodTest, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<MethodKind>& info) {
      std::string name = methods::MethodKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace redo::checker
