#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace redo {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of a small range should appear";
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ZipfSkewPrefersSmallIndices) {
  Rng rng(19);
  ZipfSampler zipf(100, 1.2);
  int low = 0;
  for (int i = 0; i < 5000; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // With s=1.2 over 100 items, the first 10 items carry well over half
  // the mass.
  EXPECT_GT(low, 2500);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(23);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

}  // namespace
}  // namespace redo
