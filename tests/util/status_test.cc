#include "util/status.h"

#include <gtest/gtest.h>

namespace redo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: page 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsThenPropagates(bool fail) {
  REDO_RETURN_IF_ERROR(fail ? Status::Corruption("inner") : Status::Ok());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kCorruption);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace redo
