#include "util/crc32c.h"

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace redo {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The CRC32C check value: crc of the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(Crc32c(digits, 0), 0x00000000u);
  // 32 zero bytes (RFC 3720 test vector).
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // 32 0xFF bytes (RFC 3720 test vector).
  const std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = 0;
    crc = Crc32cExtend(crc, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesCrc) {
  std::vector<uint8_t> data(512, 0xA5);
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte : {size_t{0}, size_t{255}, size_t{511}}) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= uint8_t(1) << bit;
      EXPECT_NE(Crc32c(data.data(), data.size()), clean);
      data[byte] ^= uint8_t(1) << bit;
    }
  }
}

}  // namespace
}  // namespace redo
