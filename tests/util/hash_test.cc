#include "util/hash.h"

#include <gtest/gtest.h>

namespace redo {
namespace {

TEST(HashTest, DeterministicAcrossCalls) {
  EXPECT_EQ(HashString("redo recovery"), HashString("redo recovery"));
  EXPECT_NE(HashString("redo recovery"), HashString("redo recoverx"));
}

TEST(HashTest, EmptyInputHasStableDigest) {
  EXPECT_EQ(HashString(""), Hasher64().Digest());
}

TEST(HashTest, IncrementalMatchesOneShot) {
  Hasher64 h;
  h.Update("abc", 3).Update("def", 3);
  EXPECT_EQ(h.Digest(), HashString("abcdef"));
}

TEST(HashTest, UpdateValueIsEndianStable) {
  Hasher64 a;
  a.UpdateValue<uint32_t>(0x01020304);
  Hasher64 b;
  const uint8_t bytes[] = {0x04, 0x03, 0x02, 0x01};  // little-endian layout
  b.Update(bytes, 4);
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(HashTest, CombineIsOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace redo
