#include "util/bitset.h"

#include <gtest/gtest.h>

namespace redo {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset s(100);
  EXPECT_EQ(s.universe_size(), 100u);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(s.Test(i));
}

TEST(BitsetTest, SetResetTest) {
  Bitset s(70);
  s.Set(0);
  s.Set(63);
  s.Set(64);
  s.Set(69);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(63));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(69));
  EXPECT_FALSE(s.Test(1));
  EXPECT_EQ(s.Count(), 4u);
  s.Reset(63);
  EXPECT_FALSE(s.Test(63));
  EXPECT_EQ(s.Count(), 3u);
}

TEST(BitsetTest, SetIsIdempotent) {
  Bitset s(10);
  s.Set(3);
  s.Set(3);
  EXPECT_EQ(s.Count(), 1u);
}

TEST(BitsetTest, UnionIntersectSubtract) {
  Bitset a(130), b(130);
  a.Set(1);
  a.Set(100);
  b.Set(100);
  b.Set(129);

  Bitset u = a;
  u.UnionWith(b);
  EXPECT_TRUE(u.Test(1) && u.Test(100) && u.Test(129));
  EXPECT_EQ(u.Count(), 3u);

  Bitset i = a;
  i.IntersectWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(100));

  Bitset d = a;
  d.SubtractWith(b);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(BitsetTest, SubsetAndEquality) {
  Bitset a(64), b(64);
  a.Set(5);
  b.Set(5);
  b.Set(6);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_FALSE(a == b);
  a.Set(6);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.IsSubsetOf(b));
}

TEST(BitsetTest, ToVectorAndFromVector) {
  Bitset s = Bitset::FromVector(200, {0, 64, 65, 199});
  EXPECT_EQ(s.ToVector(), (std::vector<uint32_t>{0, 64, 65, 199}));
}

TEST(BitsetTest, ComplementClearsTailBits) {
  Bitset s(70);
  s.Set(3);
  Bitset c = s.Complement();
  EXPECT_EQ(c.Count(), 69u);
  EXPECT_FALSE(c.Test(3));
  EXPECT_TRUE(c.Test(69));
  // Complement of complement is the original.
  EXPECT_TRUE(c.Complement() == s);
}

TEST(BitsetTest, ComplementOfWordAlignedUniverse) {
  Bitset s(128);
  Bitset c = s.Complement();
  EXPECT_EQ(c.Count(), 128u);
}

TEST(BitsetTest, EmptyUniverse) {
  Bitset s(0);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Complement().Count(), 0u);
  EXPECT_TRUE(s.ToVector().empty());
}

}  // namespace
}  // namespace redo
