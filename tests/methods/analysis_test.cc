// The §4.3 analysis pass: ARIES-style dirty-page-table reconstruction
// lets the redo scan skip installed records without page I/O, while
// recovering exactly the same state.

#include <gtest/gtest.h>

#include <memory>

#include "checker/recovery_checker.h"
#include "engine/minidb.h"
#include "engine/workload.h"
#include "methods/common.h"

namespace redo::methods {
namespace {

using engine::MiniDb;

constexpr size_t kPages = 12;

std::unique_ptr<MiniDb> MakeDb(MethodKind kind) {
  engine::MiniDbOptions options;
  options.num_pages = kPages;
  options.cache_capacity = 6;
  return std::make_unique<MiniDb>(options, MakeMethod(kind, {kPages}));
}

TEST(AnalysisTest, NameAndKind) {
  const auto method = MakeMethod(MethodKind::kPhysiologicalAnalysis, {kPages});
  EXPECT_STREQ(method->name(), "physio-aries");
  EXPECT_EQ(method->redo_test_kind(), RecoveryMethod::RedoTestKind::kLsnTag);
}

TEST(AnalysisTest, CheckpointCarriesDirtyPageTable) {
  auto db = MakeDb(MethodKind::kPhysiologicalAnalysis);
  const core::Lsn first = db->WriteSlot(1, 0, 5).value();
  ASSERT_TRUE(db->WriteSlot(2, 0, 6).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  const methods::EngineContext ctx = db->ctx();
  const auto dpt = internal_methods::ReadCheckpointDpt(ctx).value();
  ASSERT_EQ(dpt.size(), 2u);
  EXPECT_EQ(dpt.at(1), first);
}

TEST(AnalysisTest, PlainCheckpointYieldsEmptyDpt) {
  auto db = MakeDb(MethodKind::kPhysiological);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  const methods::EngineContext ctx = db->ctx();
  EXPECT_TRUE(internal_methods::ReadCheckpointDpt(ctx).value().empty());
}

TEST(AnalysisTest, SkipsInstalledRecordsWithoutFetching) {
  auto db = MakeDb(MethodKind::kPhysiologicalAnalysis);
  // Dirty two pages; flush page 1 (installing its ops); checkpoint.
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->WriteSlot(1, 1, 6).ok());
  ASSERT_TRUE(db->WriteSlot(2, 0, 7).ok());
  ASSERT_TRUE(db->MaybeFlushPage(1).ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // redo point = page 2's rec_lsn = 3
  db->Crash();
  ASSERT_TRUE(db->Recover().ok());
  const RecoveryMethod::RedoScanStats stats = db->method().last_scan_stats();
  EXPECT_EQ(stats.replayed, 1u) << "only page 2's record replays";
  EXPECT_EQ(stats.skipped_without_fetch, 0u)
      << "page 1's records precede the redo point entirely";
  EXPECT_EQ(db->ReadSlot(1, 1).value(), 6);
  EXPECT_EQ(db->ReadSlot(2, 0).value(), 7);
}

TEST(AnalysisTest, AnalysisSavesFetchesWhenRedoPointReachesBack) {
  auto db = MakeDb(MethodKind::kPhysiologicalAnalysis);
  // Page 2 dirtied first and never flushed: the redo point stays at its
  // rec_lsn. Page 1 accumulates many later records and is then flushed:
  // all of them are installed, and analysis skips them without I/O.
  ASSERT_TRUE(db->WriteSlot(2, 0, 1).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->WriteSlot(1, 0, 100 + i).ok());
  }
  ASSERT_TRUE(db->MaybeFlushPage(1).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  db->Crash();
  ASSERT_TRUE(db->Recover().ok());
  const RecoveryMethod::RedoScanStats stats = db->method().last_scan_stats();
  EXPECT_EQ(stats.scanned, 21u);
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_EQ(stats.skipped_without_fetch, 20u)
      << "page 1 left the DPT when flushed; its records skip without I/O";
  EXPECT_EQ(db->ReadSlot(1, 0).value(), 119);
  EXPECT_EQ(db->ReadSlot(2, 0).value(), 1);
}

TEST(AnalysisTest, PlainPhysiologicalFetchesForEveryScannedRecord) {
  auto db = MakeDb(MethodKind::kPhysiological);
  ASSERT_TRUE(db->WriteSlot(2, 0, 1).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->WriteSlot(1, 0, 100 + i).ok());
  }
  ASSERT_TRUE(db->MaybeFlushPage(1).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  db->Crash();
  ASSERT_TRUE(db->Recover().ok());
  const RecoveryMethod::RedoScanStats stats = db->method().last_scan_stats();
  EXPECT_EQ(stats.skipped_without_fetch, 0u);
  EXPECT_GE(stats.page_fetches, 21u)
      << "without analysis every scanned record costs a fetch";
}

TEST(AnalysisTest, RecoversIdenticallyToPlainPhysiological) {
  // Same workload, both variants: byte-identical recovered disks.
  auto RunOne = [](MethodKind kind) {
    auto db = MakeDb(kind);
    engine::WorkloadOptions wopts;
    wopts.num_pages = kPages;
    engine::Workload workload(wopts, /*seed=*/31);
    Rng rng(31);
    for (int i = 0; i < 500; ++i) {
      const engine::Action action = workload.Next();
      REDO_CHECK(engine::ExecuteAction(*db, action, rng).ok());
    }
    REDO_CHECK(db->log().ForceAll().ok());
    db->Crash();
    REDO_CHECK(db->Recover().ok());
    REDO_CHECK(db->FlushEverything().ok());
    std::vector<uint64_t> hashes;
    for (storage::PageId p = 0; p < kPages; ++p) {
      hashes.push_back(db->disk().PeekPage(p).ContentHash());
    }
    return hashes;
  };
  EXPECT_EQ(RunOne(MethodKind::kPhysiological),
            RunOne(MethodKind::kPhysiologicalAnalysis));
}

TEST(AnalysisTest, InvariantCheckerAcceptsAnalysisVariant) {
  auto db = MakeDb(MethodKind::kPhysiologicalAnalysis);
  engine::TraceRecorder trace(db->disk());
  db->Attach(engine::Instrumentation{&trace, nullptr});
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db->WriteSlot(i % kPages, 0, i).ok());
    if (i == 15) {
      ASSERT_TRUE(db->MaybeFlushPage(3).ok());
      ASSERT_TRUE(db->Checkpoint().ok());
    }
  }
  ASSERT_TRUE(db->log().Force(20).ok());
  db->Crash();
  const checker::CheckResult result = checker::CheckCrashState(*db, trace);
  EXPECT_TRUE(result.ok) << result.ToString();
}

}  // namespace
}  // namespace redo::methods
