// Method-specific behavior: what each §6 technique logs, how it
// checkpoints, and the mechanics its redo test relies on.

#include "methods/method.h"

#include <gtest/gtest.h>

#include <memory>

#include "engine/minidb.h"
#include "methods/common.h"

namespace redo::methods {
namespace {

using engine::MiniDb;

constexpr size_t kPages = 8;

std::unique_ptr<MiniDb> MakeDb(MethodKind kind, size_t capacity = 0) {
  engine::MiniDbOptions options;
  options.num_pages = kPages;
  options.cache_capacity = kind == MethodKind::kLogical ? 0 : capacity;
  return std::make_unique<MiniDb>(options, methods::MakeMethod(kind, {kPages}));
}

std::vector<wal::LogRecord> StableRecords(MiniDb& db) {
  REDO_CHECK(db.log().ForceAll().ok());
  return db.log().StableRecords(1).value();
}

// ---- Record shapes ----

TEST(PhysicalMethodTest, LogsOnlyFullPageImages) {
  auto db = MakeDb(MethodKind::kPhysical);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 1, 2}).ok());
  for (const wal::LogRecord& record : StableRecords(*db)) {
    EXPECT_EQ(record.type, wal::RecordType::kPageImage);
    EXPECT_GT(record.payload.size(), storage::Page::kSize);
  }
}

TEST(PhysiologicalMethodTest, SplitLogsOneImageAndOneRewrite) {
  auto db = MakeDb(MethodKind::kPhysiological);
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 1, 2}).ok());
  const std::vector<wal::LogRecord> records = StableRecords(*db);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, wal::RecordType::kPageImage)
      << "the new page is logged physically under physiological recovery";
  EXPECT_EQ(records[1].type, wal::RecordType::kPageRewrite);
}

TEST(GeneralizedMethodTest, SplitLogsTwoSmallRecords) {
  auto db = MakeDb(MethodKind::kGeneralized);
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 1, 2}).ok());
  const std::vector<wal::LogRecord> records = StableRecords(*db);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, wal::RecordType::kPageSplit);
  EXPECT_EQ(records[1].type, wal::RecordType::kPageRewrite);
  EXPECT_LT(records[0].payload.size(), 64u)
      << "no page image: the §6.4 log-volume win";
}

TEST(LogicalMethodTest, SplitIsOneMultiPageRecord) {
  auto db = MakeDb(MethodKind::kLogical);
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 1, 2}).ok());
  const std::vector<wal::LogRecord> records = StableRecords(*db);
  ASSERT_EQ(records.size(), 1u)
      << "a logical operation may read and write many pages";
  EXPECT_EQ(records[0].type, wal::RecordType::kPageSplit);
}

TEST(PartialPhysicalMethodTest, SlotWritesLogBytesNotImages) {
  auto full = MakeDb(MethodKind::kPhysical);
  auto partial = MakeDb(MethodKind::kPhysicalPartial);
  for (auto* db : {full.get(), partial.get()}) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->WriteSlot(1, i, i).ok());
    }
    ASSERT_TRUE(db->log().ForceAll().ok());
  }
  EXPECT_LT(partial->log().stats().stable_bytes * 20,
            full->log().stats().stable_bytes)
      << "a byte-poke record is orders of magnitude smaller than an image";
}

TEST(PartialPhysicalMethodTest, RecordsAreBlind) {
  auto db = MakeDb(MethodKind::kPhysicalPartial);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  const std::vector<wal::LogRecord> records = StableRecords(*db);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, wal::RecordType::kSlotWrite);
  const auto op =
      engine::DecodeSinglePageOp(records[0].type, records[0].payload).value();
  EXPECT_TRUE(op.blind) << "§6.2: physical operations do not read data";
}

TEST(PartialPhysicalMethodTest, SplitsFallBackToImages) {
  auto db = MakeDb(MethodKind::kPhysicalPartial);
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 1, 2}).ok());
  const std::vector<wal::LogRecord> records = StableRecords(*db);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, wal::RecordType::kPageImage);
  EXPECT_EQ(records[1].type, wal::RecordType::kPageImage);
}

TEST(PartialPhysicalMethodTest, RedoAllConvergesOnNewerDiskVersions) {
  // The idempotence story: flush a page holding updates newer than the
  // redo point, crash, and replay everything — the old pokes re-apply
  // onto the newer page and the final bytes converge.
  auto db = MakeDb(MethodKind::kPhysicalPartial);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->WriteSlot(1, 1, 6).ok());
  ASSERT_TRUE(db->MaybeFlushPage(1).ok());  // disk holds both pokes
  db->Crash();
  ASSERT_TRUE(db->Recover().ok());  // replays both onto the newer page
  EXPECT_EQ(db->ReadSlot(1, 0).value(), 5);
  EXPECT_EQ(db->ReadSlot(1, 1).value(), 6);
  EXPECT_EQ(db->method().last_scan_stats().replayed, 2u);
}

// ---- Page LSN tagging ----

TEST(LsnTaggingTest, CachedPagesCarryTheirLastRecordLsn) {
  for (const MethodKind kind :
       {MethodKind::kPhysiological, MethodKind::kGeneralized,
        MethodKind::kPhysical, MethodKind::kLogical}) {
    auto db = MakeDb(kind);
    const core::Lsn lsn1 = db->WriteSlot(1, 0, 5).value();
    EXPECT_EQ(db->FetchPage(1).value()->lsn(), lsn1)
        << MethodKindName(kind);
    const core::Lsn lsn2 = db->WriteSlot(1, 1, 6).value();
    EXPECT_EQ(db->FetchPage(1).value()->lsn(), lsn2)
        << MethodKindName(kind);
    EXPECT_GT(lsn2, lsn1);
  }
}

// ---- Checkpoints ----

TEST(CheckpointTest, RedoScanStartIsOnePastCheckpointWhenClean) {
  auto db = MakeDb(MethodKind::kPhysical);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  const methods::EngineContext ctx = db->ctx();
  const core::Lsn start = db->method().RedoScanStart(ctx).value();
  EXPECT_EQ(start, db->log().last_lsn() + 1)
      << "nothing before the checkpoint needs redo";
}

TEST(CheckpointTest, FuzzyCheckpointKeepsDirtyRecLsn) {
  auto db = MakeDb(MethodKind::kPhysiological);
  const core::Lsn first = db->WriteSlot(1, 0, 5).value();
  ASSERT_TRUE(db->WriteSlot(2, 0, 6).ok());
  // Page 1 is still dirty: the redo point must reach back to it.
  ASSERT_TRUE(db->Checkpoint().ok());
  const methods::EngineContext ctx = db->ctx();
  EXPECT_EQ(db->method().RedoScanStart(ctx).value(), first);

  // After flushing, a new checkpoint moves the redo point forward.
  ASSERT_TRUE(db->FlushEverything().ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(db->method().RedoScanStart(ctx).value(), db->log().last_lsn() + 1);
}

TEST(CheckpointTest, PhysicalCheckpointFlushesEverything) {
  auto db = MakeDb(MethodKind::kPhysical);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->WriteSlot(2, 0, 6).ok());
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_TRUE(db->pool().DirtyPages().empty());
  EXPECT_EQ(db->disk().PeekPage(1).ReadSlot(0), 5);
  EXPECT_EQ(db->disk().PeekPage(2).ReadSlot(0), 6);
}

TEST(CheckpointTest, NoStableCheckpointMeansScanFromOne) {
  auto db = MakeDb(MethodKind::kPhysiological);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  const methods::EngineContext ctx = db->ctx();
  EXPECT_EQ(db->method().RedoScanStart(ctx).value(), 1u);
}

TEST(CheckpointTest, UnforcedCheckpointRecordDoesNotCount) {
  // A checkpoint whose record is lost in the crash never happened.
  auto db = MakeDb(MethodKind::kPhysical);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // forces internally
  const core::Lsn after_first = db->log().last_lsn();
  ASSERT_TRUE(db->WriteSlot(1, 1, 6).ok());
  // Hand-append a checkpoint record without forcing it.
  wal::PayloadWriter w;
  w.U64(db->log().last_lsn() + 2);
  db->log().Append(wal::RecordType::kCheckpoint, w.Take());
  db->Crash();
  const methods::EngineContext ctx = db->ctx();
  const core::Lsn start = db->method().RedoScanStart(ctx).value();
  EXPECT_LE(start, after_first + 1)
      << "recovery must fall back to the last *stable* checkpoint";
  ASSERT_TRUE(db->Recover().ok());
  EXPECT_EQ(db->ReadSlot(1, 0).value(), 5);
}

// ---- Logical method's staging area (System R, §6.1) ----

TEST(LogicalMethodTest, CrashBeforeCheckpointDiscardsStaging) {
  auto db = MakeDb(MethodKind::kLogical);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->Checkpoint().ok());  // installs x=5
  ASSERT_TRUE(db->WriteSlot(1, 0, 6).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  // Crash before the next checkpoint: the stable database still holds 5,
  // and recovery replays the logged 6.
  EXPECT_EQ(db->disk().PeekPage(1).ReadSlot(0), 5);
  db->Crash();
  ASSERT_TRUE(db->Recover().ok());
  EXPECT_EQ(db->ReadSlot(1, 0).value(), 6);
}

TEST(LogicalMethodTest, RecoveryReplaysAgainstCheckpointedState) {
  auto db = MakeDb(MethodKind::kLogical);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(db->WriteSlot(1, 0, i).ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  for (int i = 4; i <= 6; ++i) {
    ASSERT_TRUE(db->WriteSlot(1, 0, i).ok());
  }
  ASSERT_TRUE(db->log().ForceAll().ok());
  db->Crash();
  ASSERT_TRUE(db->Recover().ok());
  EXPECT_EQ(db->ReadSlot(1, 0).value(), 6);
}

// ---- Generalized method's constraint management ----

TEST(GeneralizedMethodTest, OppositeSplitsDoNotDeadlock) {
  auto db = MakeDb(MethodKind::kGeneralized);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(db->WriteSlot(2, 0, 6).ok());
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 1, 2}).ok());
  // The reverse split would close a constraint cycle; the method must
  // resolve it (by flushing) rather than deadlock.
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 2, 1}).ok());
  EXPECT_TRUE(db->FlushEverything().ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  db->Crash();
  EXPECT_TRUE(db->Recover().ok());
}

TEST(GeneralizedMethodTest, ConstraintRearmedDuringRecovery) {
  auto db = MakeDb(MethodKind::kGeneralized);
  ASSERT_TRUE(db->WriteSlot(1, 0, 5).ok());
  ASSERT_TRUE(
      db->Split(engine::SplitOp{engine::SplitTransform::kSlotHalf, 1, 2}).ok());
  ASSERT_TRUE(db->log().ForceAll().ok());
  db->Crash();
  ASSERT_TRUE(db->Recover().ok());
  // The replayed split re-arms the write-order constraint: the old page
  // still must not reach disk before the new one.
  const Status st = db->pool().FlushPage(1);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db->pool().FlushPageCascading(1).ok());
}

// ---- Redo-scan stats accumulate across recoveries ----

TEST(RedoScanStatsTest, StatsAccumulateAcrossRecoverCalls) {
  // Regression: LsnRedoScan used to zero the caller's stats struct on
  // entry, so a second Recover() (a degradation-ladder rerun, a
  // recovery rehearsal) clobbered the first run's counts instead of
  // reporting per-rung and total work.
  for (const MethodKind kind :
       {MethodKind::kPhysiological, MethodKind::kGeneralized,
        MethodKind::kPhysicalPartial}) {
    auto db = MakeDb(kind);
    obs::RecoveryTracer tracer;
    db->Attach(engine::Instrumentation{db->trace(), &tracer});
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(db->WriteSlot(1, i, i + 10).ok());
    }
    ASSERT_TRUE(db->log().ForceAll().ok());
    db->Crash();
    ASSERT_TRUE(db->Recover().ok());
    const size_t after_first = db->method().last_scan_stats().scanned;
    EXPECT_EQ(after_first, 3u) << MethodKindName(kind);

    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(db->WriteSlot(2, i, i + 20).ok());
    }
    ASSERT_TRUE(db->log().ForceAll().ok());
    db->Crash();
    ASSERT_TRUE(db->Recover().ok());
    // The second scan sees all 5 records; the total is cumulative.
    EXPECT_EQ(db->method().last_scan_stats().scanned, after_first + 5)
        << MethodKindName(kind) << ": second Recover() clobbered the total";
    EXPECT_GE(db->method().last_scan_stats().replayed, 2u)
        << MethodKindName(kind);
    // The tracer separates runs: per-run counts stay per-run while the
    // stats struct totals.
    EXPECT_EQ(tracer.total_verdicts().total(), 3u + 5u)
        << MethodKindName(kind);
    EXPECT_EQ(tracer.run_verdicts().total(), 5u) << MethodKindName(kind);
    db->Attach(engine::Instrumentation{db->trace(), nullptr});
  }
}

// ---- Factory coverage ----

TEST(MethodFactoryTest, NamesAndKindsAreConsistent) {
  EXPECT_STREQ(MakeMethod(MethodKind::kLogical, {4})->name(), "logical");
  EXPECT_STREQ(MakeMethod(MethodKind::kPhysical, {4})->name(), "physical");
  EXPECT_STREQ(MakeMethod(MethodKind::kPhysiological, {4})->name(),
               "physiological");
  EXPECT_STREQ(MakeMethod(MethodKind::kGeneralized, {4})->name(),
               "generalized-lsn");
  EXPECT_EQ(MakeMethod(MethodKind::kLogical, {4})->redo_test_kind(),
            RecoveryMethod::RedoTestKind::kRedoAllSinceCheckpoint);
  EXPECT_EQ(MakeMethod(MethodKind::kPhysical, {4})->redo_test_kind(),
            RecoveryMethod::RedoTestKind::kRedoAllSinceCheckpoint);
  EXPECT_EQ(MakeMethod(MethodKind::kPhysiological, {4})->redo_test_kind(),
            RecoveryMethod::RedoTestKind::kLsnTag);
  EXPECT_EQ(MakeMethod(MethodKind::kGeneralized, {4})->redo_test_kind(),
            RecoveryMethod::RedoTestKind::kLsnTag);
  EXPECT_FALSE(MakeMethod(MethodKind::kLogical, {4})->allows_background_flush());
  EXPECT_TRUE(MakeMethod(MethodKind::kPhysical, {4})->allows_background_flush());
}

}  // namespace
}  // namespace redo::methods
