// Crash-torture: hammer every recovery method with randomized workloads,
// crash repeatedly at arbitrary points, validate the §4.5 recovery
// invariant with the formal checker at each crash, and verify recovery
// byte-for-byte against the stable-log-prefix oracle.
//
// With `--faults`, each run also injects disk and log faults the paper's
// model assumes away — torn log tails from interrupted forces, torn page
// writes with stale checksums, transient write-error bursts, sticky read
// errors — and enforces the stronger contract: every fault is detected
// and healed, recovery still matches the oracle exactly, and no page is
// ever wrong while verifying clean (zero silent corruption).
//
// Usage: crash_torture [--faults] [runs_per_method] [ops_per_segment] [crashes]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "checker/crash_sim.h"

int main(int argc, char** argv) {
  using namespace redo;
  bool faults = false;
  if (argc > 1 && std::strcmp(argv[1], "--faults") == 0) {
    faults = true;
    --argc;
    ++argv;
  }
  const size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const size_t ops = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const size_t crashes = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  std::printf(
      "crash torture: %zu runs/method x %zu ops/segment x %zu crashes%s\n\n",
      runs, ops, crashes, faults ? " [fault injection ON]" : "");
  std::printf("%-16s %8s %9s %9s %11s %11s %7s\n", "method", "runs", "actions",
              "crashes", "stable ops", "pages ok", "result");

  int exit_code = 0;
  size_t injected = 0, detected = 0, torn_tails = 0, salvaged = 0, healed = 0,
         retries = 0, silent = 0;
  for (const methods::MethodKind kind :
       {methods::MethodKind::kLogical, methods::MethodKind::kPhysical,
        methods::MethodKind::kPhysiological,
        methods::MethodKind::kGeneralized}) {
    size_t actions = 0, total_crashes = 0, stable_ops = 0, pages = 0;
    bool all_ok = true;
    std::string first_failure;
    for (size_t seed = 1; seed <= runs; ++seed) {
      checker::CrashSimOptions options;
      options.workload.num_pages = 16;
      options.cache_capacity = 6;
      options.ops_per_segment = ops;
      options.crashes = crashes;
      options.faults.enabled = faults;
      const checker::CrashSimResult r = checker::RunCrashSim(kind, options, seed);
      actions += r.actions_executed;
      total_crashes += r.crashes;
      stable_ops += r.stable_ops_at_crashes;
      pages += r.recovered_pages_verified;
      injected += r.faults_injected;
      detected += r.faults_detected;
      torn_tails += r.torn_tails;
      salvaged += r.salvaged_records;
      healed += r.pages_healed;
      retries += r.recovery_retries;
      silent += r.silent_corruptions;
      if (!r.ok && all_ok) {
        all_ok = false;
        first_failure = r.failure;
      }
    }
    std::printf("%-16s %8zu %9zu %9zu %11zu %11zu %7s\n",
                methods::MethodKindName(kind), runs, actions, total_crashes,
                stable_ops, pages, all_ok ? "OK" : "FAILED");
    if (!all_ok) {
      std::printf("    first failure: %s\n", first_failure.c_str());
      exit_code = 1;
    }
  }
  if (faults) {
    std::printf(
        "\nfault schedule: injected=%zu detected+healed=%zu torn_tails=%zu\n"
        "  salvaged_records=%zu pages_healed=%zu recovery_retries=%zu\n"
        "  SILENT CORRUPTIONS: %zu%s\n",
        injected, detected, torn_tails, salvaged, healed, retries, silent,
        silent == 0 ? " (every fault was caught or healed)" : "  <-- BUG");
    if (silent != 0) exit_code = 1;
  }
  std::printf("\nEvery crash point was validated two ways: the recovery\n"
              "invariant (operations(log) - redo_set is an installation-graph\n"
              "prefix explaining the stable state) and exact byte-level\n"
              "equality of the recovered state with the stable-log prefix.\n");
  return exit_code;
}
