// Crash-torture: hammer every recovery method with randomized workloads,
// crash repeatedly at arbitrary points, validate the §4.5 recovery
// invariant with the formal checker at each crash, and verify recovery
// byte-for-byte against the stable-log-prefix oracle.
//
// With `--faults`, each run also injects disk and log faults the paper's
// model assumes away — torn log tails from interrupted forces, torn page
// writes with stale checksums, transient write-error bursts, sticky read
// errors, and *log-media* damage to the sealed log body (mid-stream bit
// rot, lost segment copies, torn seals, archive rot) — and enforces the
// stronger contract: every fault is detected and healed or explicitly
// degraded (mirror repair -> media recovery from backup+archive ->
// diagnosed refusal), recovery still matches the oracle exactly, and no
// page is ever wrong while verifying clean (zero silent corruption).
//
// With `--force-unrecoverable` (implies --faults), the offsite-restore
// remedy for rung-3 refusals is withheld: the first uncoverable hole is
// a terminal failure, and the failing cycle's recovery timeline (JSONL:
// phases, method, ladder rung, first unreadable LSN) is written to the
// --timeline-out path for post-mortem — the artifact CI uploads.
//
// With `--parallel`, every non-degraded crash point additionally runs
// the serial-vs-parallel redo equivalence oracle: recovery is repeated
// with 2, 4, and 8 redo workers (crash state restored between runs) and
// must produce byte-identical effective pages, page LSNs, and
// redo-verdict multisets as the serial run. Any divergence fails the
// run.
//
// With `--concurrent`, the torture moves to the concurrent front end:
// every method runs under 2, 4, and 8 session threads driving the
// group-commit pipeline, with fuzzy checkpoints where the method
// supports them and BOTH fault injectors armed (the crash tears the
// in-flight force; the disk fails page writes in transient bursts).
// Each cycle freezes the pipeline at an arbitrary moment, crashes,
// recovers, and enforces the two concurrent oracles: zero lost
// acknowledged commits, and recovered state equal to the LSN-ordered
// model replay of the surviving journal.
//
// With `--instant`, the concurrent torture recovers through instant
// restart instead: every cycle crashes the front end, reopens with
// RecoverInstant(), and runs the next full load WHILE redo drains
// (sessions drain their pages on demand, background workers race them).
// A fraction of recoveries take a second crash during
// serving-while-redoing — half before any traffic touches a page, half
// mid-drain with sessions in flight. The oracles are the concurrent
// ones, applied across the recover-while-loading boundary.
//
// Usage: crash_torture [--faults] [--force-unrecoverable] [--parallel]
//                      [--concurrent] [--instant] [--timeline-out PATH]
//                      [runs_per_method] [ops_per_segment] [crashes]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "checker/concurrent_sim.h"
#include "checker/crash_sim.h"

int main(int argc, char** argv) {
  using namespace redo;
  bool faults = false;
  bool force_unrecoverable = false;
  bool parallel = false;
  bool concurrent = false;
  bool instant = false;
  std::string timeline_out = "crash_torture_failing_timeline.jsonl";
  while (argc > 1) {
    if (std::strcmp(argv[1], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[1], "--force-unrecoverable") == 0) {
      faults = true;
      force_unrecoverable = true;
    } else if (std::strcmp(argv[1], "--parallel") == 0) {
      parallel = true;
    } else if (std::strcmp(argv[1], "--concurrent") == 0) {
      concurrent = true;
    } else if (std::strcmp(argv[1], "--instant") == 0) {
      instant = true;
    } else if (std::strcmp(argv[1], "--timeline-out") == 0 && argc > 2) {
      timeline_out = argv[2];
      --argc;
      ++argv;
    } else {
      break;
    }
    --argc;
    ++argv;
  }
  const size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const size_t ops = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const size_t crashes = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  if (instant) {
    // Instant-restart torture: six methods x {2,4,8} sessions. Every
    // cycle reopens with RecoverInstant and runs the next load while
    // redo drains; 40% of recoveries take a second crash during
    // serving-while-redoing (half before first fetch, half mid-drain).
    std::printf(
        "instant-restart torture: %zu seeds x %zu cycles per "
        "(method, sessions) config [torn forces ON, double crashes 40%%]\n\n",
        runs, crashes);
    std::printf("%-16s %9s %8s %8s %8s %8s %7s %9s %8s %7s\n", "method",
                "sessions", "cycles", "ops", "acked", "refused", "lost",
                "instants", "dblcrash", "result");
    int instant_exit = 0;
    size_t total_cycles = 0, total_lost = 0, total_instants = 0,
           total_double = 0;
    for (const methods::MethodKind kind :
         {methods::MethodKind::kLogical, methods::MethodKind::kPhysical,
          methods::MethodKind::kPhysiological,
          methods::MethodKind::kGeneralized,
          methods::MethodKind::kPhysiologicalAnalysis,
          methods::MethodKind::kPhysicalPartial}) {
      for (const size_t sessions : {2u, 4u, 8u}) {
        checker::ConcurrentSimResult sum;
        sum.ok = true;
        std::string first_failure;
        for (size_t seed = 1; seed <= runs; ++seed) {
          checker::ConcurrentSimOptions options;
          options.sessions = sessions;
          options.ops_per_session = std::max<size_t>(1, ops / sessions);
          options.cycles = crashes;
          options.tear_log_tail = true;
          options.disk_write_faults = true;
          options.fuzzy_checkpoints = true;
          options.instant_restart = true;
          options.instant_drain_workers = 2;
          options.double_crash_percent = 40;
          const checker::ConcurrentSimResult r =
              checker::RunConcurrentCrashSim(kind, options,
                                             seed * 1409 + sessions);
          sum.cycles += r.cycles;
          sum.ops_applied += r.ops_applied;
          sum.commits_acked += r.commits_acked;
          sum.commits_refused += r.commits_refused;
          sum.lost_acked_commits += r.lost_acked_commits;
          sum.instant_restarts += r.instant_restarts;
          sum.double_crashes += r.double_crashes;
          if (!r.ok) {
            if (sum.ok) first_failure = r.failure;
            sum.ok = false;
          }
        }
        total_cycles += sum.cycles;
        total_lost += sum.lost_acked_commits;
        total_instants += sum.instant_restarts;
        total_double += sum.double_crashes;
        std::printf("%-16s %9zu %8zu %8zu %8zu %8zu %7zu %9zu %8zu %7s\n",
                    methods::MethodKindName(kind), sessions, sum.cycles,
                    sum.ops_applied, sum.commits_acked, sum.commits_refused,
                    sum.lost_acked_commits, sum.instant_restarts,
                    sum.double_crashes, sum.ok ? "OK" : "FAILED");
        if (!sum.ok) {
          std::printf("    first failure: %s\n", first_failure.c_str());
          instant_exit = 1;
        }
      }
    }
    std::printf(
        "\n%zu recover-while-loading cycles (%zu instant restarts, %zu "
        "double crashes); lost acked commits: %zu%s\n",
        total_cycles, total_instants, total_double, total_lost,
        total_lost == 0 ? " (every acknowledged commit survived)"
                        : "  <-- BUG");
    if (total_lost != 0) instant_exit = 1;
    return instant_exit;
  }

  if (concurrent) {
    // The concurrent torture: six methods x {2,4,8} sessions, both
    // fault injectors armed, `runs` seeds x `crashes` freeze/crash/
    // recover cycles per configuration.
    std::printf(
        "concurrent crash torture: %zu seeds x %zu cycles per "
        "(method, sessions) config [torn forces ON, disk write bursts ON]\n\n",
        runs, crashes);
    std::printf("%-16s %9s %8s %8s %8s %8s %7s %7s %9s %9s %7s\n", "method",
                "sessions", "cycles", "ops", "acked", "refused", "lost",
                "torn", "gc_acks", "batches", "result");
    int concurrent_exit = 0;
    size_t total_cycles = 0, total_lost = 0;
    for (const methods::MethodKind kind :
         {methods::MethodKind::kLogical, methods::MethodKind::kPhysical,
          methods::MethodKind::kPhysiological,
          methods::MethodKind::kGeneralized,
          methods::MethodKind::kPhysiologicalAnalysis,
          methods::MethodKind::kPhysicalPartial}) {
      for (const size_t sessions : {2u, 4u, 8u}) {
        checker::ConcurrentSimResult sum;
        sum.ok = true;
        std::string first_failure;
        for (size_t seed = 1; seed <= runs; ++seed) {
          checker::ConcurrentSimOptions options;
          options.sessions = sessions;
          options.ops_per_session = std::max<size_t>(1, ops / sessions);
          options.cycles = crashes;
          options.tear_log_tail = true;
          options.disk_write_faults = true;
          options.fuzzy_checkpoints = true;
          const checker::ConcurrentSimResult r =
              checker::RunConcurrentCrashSim(kind, options,
                                             seed * 977 + sessions);
          sum.cycles += r.cycles;
          sum.ops_applied += r.ops_applied;
          sum.commits_acked += r.commits_acked;
          sum.commits_refused += r.commits_refused;
          sum.lost_acked_commits += r.lost_acked_commits;
          sum.torn_tails += r.torn_tails;
          sum.group_commits += r.group_commits;
          sum.group_batches += r.group_batches;
          if (!r.ok) {
            if (sum.ok) first_failure = r.failure;
            sum.ok = false;
          }
        }
        total_cycles += sum.cycles;
        total_lost += sum.lost_acked_commits;
        std::printf("%-16s %9zu %8zu %8zu %8zu %8zu %7zu %7zu %9llu %9llu %7s\n",
                    methods::MethodKindName(kind), sessions, sum.cycles,
                    sum.ops_applied, sum.commits_acked, sum.commits_refused,
                    sum.lost_acked_commits, sum.torn_tails,
                    static_cast<unsigned long long>(sum.group_commits),
                    static_cast<unsigned long long>(sum.group_batches),
                    sum.ok ? "OK" : "FAILED");
        if (!sum.ok) {
          std::printf("    first failure: %s\n", first_failure.c_str());
          concurrent_exit = 1;
        }
      }
    }
    std::printf(
        "\n%zu freeze/crash/recover cycles; lost acked commits: %zu%s\n",
        total_cycles, total_lost,
        total_lost == 0 ? " (every acknowledged commit survived)"
                        : "  <-- BUG");
    if (total_lost != 0) concurrent_exit = 1;
    return concurrent_exit;
  }

  std::printf(
      "crash torture: %zu runs/method x %zu ops/segment x %zu crashes%s%s%s\n\n",
      runs, ops, crashes, faults ? " [fault injection ON]" : "",
      force_unrecoverable ? " [offsite restore WITHHELD]" : "",
      parallel ? " [parallel equivalence oracle: 2/4/8 workers]" : "");
  if (parallel) {
    std::printf("%-16s %8s %9s %9s %11s %9s %9s %9s %8s %7s %7s\n", "method",
                "runs", "actions", "crashes", "pages ok", "applied", "skipped",
                "notexp", "eqchk", "diverge", "result");
  } else {
    std::printf("%-16s %8s %9s %9s %11s %9s %9s %9s %7s\n", "method", "runs",
                "actions", "crashes", "pages ok", "applied", "skipped",
                "notexp", "result");
  }

  int exit_code = 0;
  size_t injected = 0, detected = 0, torn_tails = 0, salvaged = 0, healed = 0,
         retries = 0, silent = 0;
  size_t log_injected = 0, log_repairs = 0, rung1 = 0, rung2 = 0, rung3 = 0,
         backups = 0, sealed = 0;
  std::string failing_timeline;       // last failing cycle's JSONL timeline
  std::string failing_cycle_metrics;  // its per-cycle metrics delta
  for (const methods::MethodKind kind :
       {methods::MethodKind::kLogical, methods::MethodKind::kPhysical,
        methods::MethodKind::kPhysiological,
        methods::MethodKind::kGeneralized}) {
    size_t actions = 0, total_crashes = 0, pages = 0;
    size_t applied = 0, skipped = 0, not_exposed = 0;
    size_t eq_checks = 0, eq_divergences = 0;
    bool all_ok = true;
    std::string first_failure;
    for (size_t seed = 1; seed <= runs; ++seed) {
      checker::CrashSimOptions options;
      options.workload.num_pages = 16;
      options.cache_capacity = 6;
      options.ops_per_segment = ops;
      options.crashes = crashes;
      options.faults.enabled = faults;
      // Small segments so every run seals (and damages) several; a fresh
      // backup each cycle so rung 2 has a current anchor. Withholding
      // the backup AND the offsite restore makes the first double-fault
      // hole unrecoverable — the forced-failure path.
      options.faults.log_segment_bytes = 448;
      options.faults.backup_interval = force_unrecoverable ? 0 : 1;
      options.faults.truncate_at_backup = !force_unrecoverable;
      options.faults.no_offsite_restore = force_unrecoverable;
      if (parallel) options.equivalence_workers = {2, 4, 8};
      const checker::CrashSimResult r = checker::RunCrashSim(kind, options, seed);
      actions += r.actions_executed;
      total_crashes += r.crashes;
      pages += r.recovered_pages_verified;
      applied += r.redo_applied;
      skipped += r.redo_skipped_installed;
      not_exposed += r.redo_not_exposed;
      injected += r.faults_injected;
      detected += r.faults_detected;
      torn_tails += r.torn_tails;
      salvaged += r.salvaged_records;
      healed += r.pages_healed;
      retries += r.recovery_retries;
      silent += r.silent_corruptions;
      log_injected += r.log_faults_injected;
      log_repairs += r.log_scrub_repairs;
      rung1 += r.ladder_mirror_cycles;
      rung2 += r.ladder_media_cycles;
      rung3 += r.ladder_refusals;
      backups += r.backups_taken;
      sealed += r.segments_sealed;
      eq_checks += r.equivalence_checks;
      eq_divergences += r.equivalence_divergences;
      if (!r.ok) {
        if (all_ok) {
          all_ok = false;
          first_failure = r.failure;
        }
        // Retain the most recent failing cycle's timeline for the
        // post-mortem artifact.
        if (!r.failing_timeline_jsonl.empty()) {
          failing_timeline = r.failing_timeline_jsonl;
          failing_cycle_metrics = r.last_cycle_metrics_text;
        }
      }
    }
    if (parallel) {
      std::printf("%-16s %8zu %9zu %9zu %11zu %9zu %9zu %9zu %8zu %7zu %7s\n",
                  methods::MethodKindName(kind), runs, actions, total_crashes,
                  pages, applied, skipped, not_exposed, eq_checks,
                  eq_divergences, all_ok ? "OK" : "FAILED");
      if (eq_divergences != 0) exit_code = 1;
    } else {
      std::printf("%-16s %8zu %9zu %9zu %11zu %9zu %9zu %9zu %7s\n",
                  methods::MethodKindName(kind), runs, actions, total_crashes,
                  pages, applied, skipped, not_exposed,
                  all_ok ? "OK" : "FAILED");
    }
    if (!all_ok) {
      std::printf("    first failure: %s\n", first_failure.c_str());
      exit_code = 1;
    }
  }
  if (faults) {
    std::printf(
        "\nfault schedule: injected=%zu detected+healed=%zu torn_tails=%zu\n"
        "  salvaged_records=%zu pages_healed=%zu recovery_retries=%zu\n"
        "  SILENT CORRUPTIONS: %zu%s\n",
        injected, detected, torn_tails, salvaged, healed, retries, silent,
        silent == 0 ? " (every fault was caught or healed)" : "  <-- BUG");
    std::printf(
        "log-media schedule: injected=%zu scrub_repairs=%zu segments_sealed=%zu\n"
        "  ladder: rung1(mirror)=%zu rung2(media)=%zu rung3(refused)=%zu"
        " backups=%zu\n",
        log_injected, log_repairs, sealed, rung1, rung2, rung3, backups);
    if (silent != 0) exit_code = 1;
  }
  if (exit_code != 0 && !failing_timeline.empty()) {
    if (FILE* out = std::fopen(timeline_out.c_str(), "w")) {
      std::fputs(failing_timeline.c_str(), out);
      std::fclose(out);
      std::printf("\nfailing-cycle recovery timeline written to %s\n",
                  timeline_out.c_str());
    } else {
      std::printf("\ncould not write timeline to %s\n", timeline_out.c_str());
    }
    std::printf("failing-cycle metric delta:\n%s", failing_cycle_metrics.c_str());
  }
  std::printf("\nEvery crash point was validated two ways: the recovery\n"
              "invariant (operations(log) - redo_set is an installation-graph\n"
              "prefix explaining the stable state) and exact byte-level\n"
              "equality of the recovered state with the stable-log prefix.\n");
  return exit_code;
}
