// Crash-torture: hammer every recovery method with randomized workloads,
// crash repeatedly at arbitrary points, validate the §4.5 recovery
// invariant with the formal checker at each crash, and verify recovery
// byte-for-byte against the stable-log-prefix oracle.
//
// Usage: crash_torture [runs_per_method] [ops_per_segment] [crashes]

#include <cstdio>
#include <cstdlib>

#include "checker/crash_sim.h"

int main(int argc, char** argv) {
  using namespace redo;
  const size_t runs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const size_t ops = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const size_t crashes = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  std::printf("crash torture: %zu runs/method x %zu ops/segment x %zu crashes\n\n",
              runs, ops, crashes);
  std::printf("%-16s %8s %9s %9s %11s %11s %7s\n", "method", "runs", "actions",
              "crashes", "stable ops", "pages ok", "result");

  int exit_code = 0;
  for (const methods::MethodKind kind :
       {methods::MethodKind::kLogical, methods::MethodKind::kPhysical,
        methods::MethodKind::kPhysiological,
        methods::MethodKind::kGeneralized}) {
    size_t actions = 0, total_crashes = 0, stable_ops = 0, pages = 0;
    bool all_ok = true;
    std::string first_failure;
    for (size_t seed = 1; seed <= runs; ++seed) {
      checker::CrashSimOptions options;
      options.workload.num_pages = 16;
      options.cache_capacity = 6;
      options.ops_per_segment = ops;
      options.crashes = crashes;
      const checker::CrashSimResult r = checker::RunCrashSim(kind, options, seed);
      actions += r.actions_executed;
      total_crashes += r.crashes;
      stable_ops += r.stable_ops_at_crashes;
      pages += r.recovered_pages_verified;
      if (!r.ok && all_ok) {
        all_ok = false;
        first_failure = r.failure;
      }
    }
    std::printf("%-16s %8zu %9zu %9zu %11zu %11zu %7s\n",
                methods::MethodKindName(kind), runs, actions, total_crashes,
                stable_ops, pages, all_ok ? "OK" : "FAILED");
    if (!all_ok) {
      std::printf("    first failure: %s\n", first_failure.c_str());
      exit_code = 1;
    }
  }
  std::printf("\nEvery crash point was validated two ways: the recovery\n"
              "invariant (operations(log) - redo_set is an installation-graph\n"
              "prefix explaining the stable state) and exact byte-level\n"
              "equality of the recovered state with the stable-log prefix.\n");
  return exit_code;
}
