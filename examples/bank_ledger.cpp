// A bank ledger on MiniDb: accounts are page slots, and money moves with
// the §6.4-class cross-page transfer operation (one small log record that
// reads the source page and writes the destination page, plus the source
// rewrite — with the cache manager enforcing destination-before-source
// write order under generalized-LSN recovery).
//
// The audit invariant is conservation: the sum of all balances never
// changes, no matter where the crash lands. Redo recovery restores
// exactly the stable-log prefix, and every prefix of transfer pairs
// conserves money — half-transfers cannot survive a crash *if* the two
// records travel together. We force the log between operations but never
// inside one, so the demo also shows the conservation-breaking near-miss
// a mid-pair force boundary would create, and why the checker still
// calls that state recoverable (recovery is exact; conservation is an
// *application* invariant needing both records, i.e. a transaction — the
// paper's model, and this library, are deliberately below that layer).
//
// Usage: bank_ledger [accounts_per_page] [transfers] [seed]

#include <cstdio>
#include <cstdlib>

#include "checker/recovery_checker.h"
#include "engine/minidb.h"

namespace {

using namespace redo;

int64_t TotalBalance(engine::MiniDb& db) {
  int64_t total = 0;
  for (storage::PageId p = 0; p < db.num_pages(); ++p) {
    for (uint32_t s = 0; s < 8; ++s) {
      total += db.ReadSlot(p, s).value();
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t kSlots = 8;  // accounts per page
  const int transfers = argc > 2 ? std::atoi(argv[2]) : 200;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  (void)argv;

  engine::MiniDbOptions options;
  options.num_pages = 8;
  // Unbounded cache: evictions could force the log *inside* a transfer
  // pair (at the dst record), letting a crash duplicate money — see the
  // closing note. Explicit forces below always cover whole pairs.
  options.cache_capacity = 0;
  engine::MiniDb db(options,
                    methods::MakeMethod(methods::MethodKind::kGeneralized,
                                        {options.num_pages}));
  engine::TraceRecorder trace(db.disk());
  db.Attach(redo::engine::Instrumentation{&trace, nullptr});

  // Seed every account with 100 units.
  for (storage::PageId p = 0; p < options.num_pages; ++p) {
    for (uint32_t s = 0; s < kSlots; ++s) {
      REDO_CHECK(db.WriteSlot(p, s, 100).ok());
    }
  }
  REDO_CHECK(db.Checkpoint().ok());
  const int64_t initial_total = TotalBalance(db);
  std::printf("bank: %zu pages x %u accounts, total balance %lld\n",
              db.num_pages(), kSlots, (long long)initial_total);

  // Random transfers; force the log between (never inside) operations.
  Rng rng(seed);
  for (int i = 0; i < transfers; ++i) {
    const storage::PageId src =
        static_cast<storage::PageId>(rng.Below(options.num_pages));
    storage::PageId dst;
    do {
      dst = static_cast<storage::PageId>(rng.Below(options.num_pages));
    } while (dst == src);
    const uint32_t src_slot = static_cast<uint32_t>(rng.Below(kSlots));
    const uint32_t dst_slot = static_cast<uint32_t>(rng.Below(kSlots));
    // The transfer op moves the whole of src[slot] into dst[slot]
    // (overwriting it) and zeroes the source, so the pair conserves the
    // total only when the destination account is empty — skip otherwise.
    if (db.ReadSlot(dst, dst_slot).value() != 0) continue;
    REDO_CHECK(
        db.Split(engine::MakeSlotTransfer(src, src_slot, dst, dst_slot)).ok());
    if (rng.Chance(0.3)) REDO_CHECK(db.log().ForceAll().ok());
    if (rng.Chance(0.2)) {
      REDO_CHECK(db.MaybeFlushPage(src).ok());
    }
  }
  std::printf("after %d transfer attempts, total = %lld (conserved: %s)\n",
              transfers, (long long)TotalBalance(db),
              TotalBalance(db) == initial_total ? "yes" : "NO");

  // Crash with an unforced tail; validate the invariant; recover.
  db.Crash();
  const checker::CheckResult verdict = checker::CheckCrashState(db, trace);
  std::printf("recovery invariant at crash: %s\n",
              verdict.ok ? "holds" : verdict.ToString().c_str());
  REDO_CHECK(db.Recover().ok());

  const int64_t recovered_total = TotalBalance(db);
  std::printf("after recovery, total = %lld (conserved: %s)\n",
              (long long)recovered_total,
              recovered_total == initial_total ? "yes" : "NO");
  std::printf(
      "\nConservation holds because each transfer's two records carry\n"
      "LSNs n and n+1 and the log is forced only between operations, so\n"
      "the stable prefix never splits a pair. A mid-pair force boundary\n"
      "would recover a zeroed source without the credited destination —\n"
      "page-level recovery would still be exact (the paper's contract);\n"
      "pair atomicity is the transaction layer's job, above this theory.\n");
  return recovered_total == initial_total && verdict.ok ? 0 : 1;
}
