// The §6.4 application end-to-end: a B-tree whose node splits are logged
// with generalized (multi-page) log operations vs. conventional
// physiological operations.
//
// Loads the same key sequence into two trees, one per method, and
// reports: log volume (the generalized win), the write-order constraint
// the generalized cache manager enforces (the cost), and that both trees
// recover exactly after a crash.

#include <cstdio>

#include "btree/btree.h"
#include "btree/node_format.h"
#include "checker/recovery_checker.h"

namespace {

using namespace redo;
using engine::MiniDb;
using methods::MethodKind;

struct RunResult {
  uint64_t log_bytes = 0;
  uint64_t records = 0;
  uint64_t ordered_cascades = 0;
  size_t entries = 0;
  uint32_t height = 0;
  bool recovered_ok = false;
  bool invariant_ok = false;
};

RunResult Run(MethodKind kind, int keys) {
  engine::MiniDbOptions options;
  options.num_pages = 256;
  options.cache_capacity = kind == MethodKind::kLogical ? 0 : 16;
  MiniDb db(options, methods::MakeMethod(kind, {options.num_pages}));
  engine::TraceRecorder trace(db.disk());
  db.Attach(redo::engine::Instrumentation{&trace, nullptr});

  btree::Btree tree = btree::Btree::Create(&db).value();
  for (int i = 0; i < keys; ++i) {
    const int64_t key = (static_cast<int64_t>(i) * 2654435761) % (keys * 4);
    const Status st = tree.Insert(key, i);
    REDO_CHECK(st.ok()) << st.ToString();
  }
  REDO_CHECK(db.log().ForceAll().ok());

  RunResult result;
  result.records = db.log().stats().appends;
  result.log_bytes = db.log().stats().stable_bytes;
  result.ordered_cascades = db.pool().stats().ordered_cascades;

  // Crash, validate the invariant, recover, revalidate the tree.
  db.Crash();
  result.invariant_ok = checker::CheckCrashState(db, trace).ok;
  REDO_CHECK(db.Recover().ok());
  btree::Btree reopened = btree::Btree::Open(&db).value();
  result.recovered_ok = reopened.ValidateStructure().ok();
  result.entries = reopened.Size().value();
  result.height = reopened.Height().value();
  return result;
}

}  // namespace

int main() {
  constexpr int kKeys = 2000;
  std::printf("Loading %d keys into a B-tree under each recovery method\n",
              kKeys);
  std::printf("(node capacity %u entries; splits are the interesting ops)\n\n",
              btree::NodeRef::Capacity());
  std::printf("%-16s %12s %9s %9s %7s %7s %10s %10s\n", "method", "log bytes",
              "records", "cascades", "height", "entries", "recovered",
              "invariant");

  uint64_t physio_bytes = 0, gen_bytes = 0;
  for (const MethodKind kind :
       {MethodKind::kPhysical, MethodKind::kPhysicalPartial, MethodKind::kLogical,
        MethodKind::kPhysiological,
        MethodKind::kGeneralized}) {
    const RunResult r = Run(kind, kKeys);
    std::printf("%-16s %12llu %9llu %9llu %7u %7zu %10s %10s\n",
                methods::MethodKindName(kind),
                (unsigned long long)r.log_bytes, (unsigned long long)r.records,
                (unsigned long long)r.ordered_cascades, r.height, r.entries,
                r.recovered_ok ? "yes" : "NO", r.invariant_ok ? "holds" : "NO");
    if (kind == MethodKind::kPhysiological) physio_bytes = r.log_bytes;
    if (kind == MethodKind::kGeneralized) gen_bytes = r.log_bytes;
  }

  std::printf(
      "\nGeneralized split logging avoids the physical image of each new\n"
      "node (§6.4): %.1fx less log than physiological on this workload,\n"
      "at the price of the careful write order visible in 'cascades'.\n",
      physio_bytes > 0 && gen_bytes > 0
          ? static_cast<double>(physio_bytes) / static_cast<double>(gen_bytes)
          : 0.0);
  return 0;
}
