// Quickstart: the two faces of the library in ~100 lines.
//
//  1. The formal model (redo::core): build a history, derive its
//     conflict / installation / state graphs, ask which crash states are
//     recoverable and why.
//  2. The simulated engine (redo::engine): a page-based database with a
//     write-ahead log and a pluggable recovery method; write, crash,
//     recover, and let the checker validate the recovery invariant.

#include <cstdio>

#include "checker/recovery_checker.h"
#include "core/exposed.h"
#include "core/replay.h"
#include "core/scenarios.h"
#include "engine/minidb.h"

namespace {

void FormalModelTour() {
  using namespace redo::core;
  using redo::Bitset;
  std::printf("=== 1. The formal model ===\n");

  // The paper's Figure 4 history: O (r/w x), P (r x, w y), Q (r/w x).
  const Scenario fig4 = MakeFigure4();
  std::printf("history:\n%s", fig4.history.DebugString().c_str());
  std::printf("conflict graph:\n%s", fig4.conflict.DebugString().c_str());
  std::printf("installation graph (solely-WR edges removed):\n%s",
              fig4.installation.DebugString().c_str());

  // The installation graph admits the prefix {P}, which the conflict
  // graph forbids — the extra flexibility of Figure 5.
  const Bitset only_p = Bitset::FromVector(3, {1});
  std::printf("{P} prefix of conflict graph?      %s\n",
              fig4.conflict.dag().IsPrefix(only_p) ? "yes" : "no");
  std::printf("{P} prefix of installation graph?  %s\n",
              fig4.installation.IsPrefix(only_p) ? "yes" : "no");

  // The state determined by installing only P, and its recovery.
  State crash = fig4.state_graph.DeterminedState(only_p);
  std::printf("state with only P installed: %s\n", crash.ToString().c_str());
  const ExplainResult explain = PrefixExplains(
      fig4.history, fig4.conflict, fig4.installation, fig4.state_graph, only_p,
      crash);
  std::printf("explained by prefix {P}?  %s\n",
              explain.explains ? "yes" : explain.ToString().c_str());
  State recovered = crash;
  const redo::Status replay = ReplayUninstalled(
      fig4.history, fig4.conflict, fig4.state_graph, only_p, &recovered);
  std::printf("replaying O, Q:  %s -> %s (final state %s)\n\n",
              replay.ok() ? "ok" : replay.ToString().c_str(),
              recovered.ToString().c_str(),
              fig4.state_graph.FinalState().ToString().c_str());
}

void EngineTour() {
  using namespace redo;
  std::printf("=== 2. The simulated engine ===\n");

  engine::MiniDbOptions options;
  options.num_pages = 8;
  engine::MiniDb db(options,
                    methods::MakeMethod(methods::MethodKind::kPhysiological,
                                        {options.num_pages}));
  engine::TraceRecorder trace(db.disk());
  db.Attach(redo::engine::Instrumentation{&trace, nullptr});

  // A few updates: each is logged, applied in cache, and tagged with its
  // record's LSN.
  (void)db.WriteSlot(/*page=*/1, /*slot=*/0, /*value=*/42).value();
  (void)db.WriteSlot(1, 1, 43).value();
  (void)db.WriteSlot(2, 0, 44).value();
  std::printf("wrote 3 slots; log tail at lsn %llu, stable at %llu\n",
              (unsigned long long)db.log().last_lsn(),
              (unsigned long long)db.log().stable_lsn());

  // Force the first two records only, then crash: the third is lost.
  (void)db.log().Force(2);
  db.Crash();

  // The checker validates the §4.5 recovery invariant at this exact
  // crash point, against the formal model.
  const checker::CheckResult check = checker::CheckCrashState(db, trace);
  std::printf("recovery invariant at crash: %s\n", check.ToString().c_str());

  (void)db.Recover();
  std::printf("after recovery: p1[0]=%lld p1[1]=%lld p2[0]=%lld "
              "(the unforced write is gone)\n",
              (long long)db.ReadSlot(1, 0).value(),
              (long long)db.ReadSlot(1, 1).value(),
              (long long)db.ReadSlot(2, 0).value());
}

}  // namespace

int main() {
  FormalModelTour();
  EngineTour();
  return 0;
}
