// recovery_timeline: run one deterministic crash/recover scenario per
// recovery method with a RecoveryTracer attached, and print the full
// per-phase timeline — checkpoint chosen, every redo-test verdict with
// its reason code, phase I/O costs — plus the per-run metrics-registry
// delta.
//
// The scenario is fixed: writes across five pages, a mid-stream
// checkpoint, more writes, two pages flushed (so LSN-test methods have
// something to *skip*), full force, crash, recover. Deterministic by
// construction; `--no-timing` drops the only nondeterministic field
// (wall_us), making the output byte-identical across invocations.
//
// Usage: recovery_timeline [--json] [--no-timing] [--method NAME]
//   --json       one JSON document {"runs":[{method, timeline, metrics}]}
//                (parseable by `python3 -m json.tool`; CI does exactly that)
//   --no-timing  omit wall-clock fields for byte-identical output
//   --method     run only one method (logical | physical | physiological
//                | generalized-lsn)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/minidb.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/recovery_trace.h"

namespace {

using namespace redo;

struct RunOutput {
  std::string method;
  std::string timeline_text;
  std::string timeline_json_array;  // "[{...},{...}]"
  std::string metrics_json;         // recovery-delta snapshot as JSON
  std::string metrics_text;
  bool ok = false;
};

RunOutput RunScenario(methods::MethodKind kind, bool include_timing) {
  RunOutput out;
  out.method = methods::MethodKindName(kind);

  engine::MiniDbOptions options;
  options.num_pages = 8;
  // The logical method redoes everything since the checkpoint and has no
  // page-LSN test; run it write-through like the crash simulator does.
  options.cache_capacity = kind == methods::MethodKind::kLogical ? 0 : 4;
  engine::MiniDb db(options, methods::MakeMethod(kind, {options.num_pages}));
  obs::RecoveryTracer tracer(&db.metrics());
  db.Attach(redo::engine::Instrumentation{nullptr, &tracer});

  // Phase 1: three writes, then a checkpoint — these land *behind* the
  // redo-scan anchor and should not produce verdicts.
  (void)db.WriteSlot(1, 0, 100).value();
  (void)db.WriteSlot(2, 0, 200).value();
  (void)db.WriteSlot(3, 0, 300).value();
  (void)db.Checkpoint();

  // Phase 2: five more writes; flush pages 1 and 2 so their records are
  // installed on disk (LSN-test methods will report skipped-installed;
  // redo-all methods will reapply them anyway).
  (void)db.WriteSlot(1, 1, 101).value();
  (void)db.WriteSlot(2, 1, 201).value();
  (void)db.WriteSlot(4, 0, 400).value();
  (void)db.WriteSlot(5, 0, 500).value();
  (void)db.WriteSlot(4, 1, 401).value();
  (void)db.MaybeFlushPage(1);
  (void)db.MaybeFlushPage(2);
  (void)db.log().ForceAll();

  const obs::Snapshot before = db.metrics().TakeSnapshot();
  db.Crash();
  const Status status = db.Recover();
  out.ok = status.ok();

  out.timeline_text = tracer.ToText(include_timing);
  {
    obs::JsonWriter w;
    w.BeginArray();
    for (const obs::TraceEvent& event : tracer.events()) {
      w.Raw(event.ToJson(include_timing));
    }
    w.EndArray();
    out.timeline_json_array = w.Take();
  }
  obs::Snapshot delta = db.metrics().TakeSnapshot().Delta(before);
  if (!include_timing) {
    // The phase-duration histogram is the one wall-clock metric; drop it
    // so --no-timing output is byte-identical across invocations.
    delta = delta.WithoutPrefix("recovery.phase_us");
  }
  out.metrics_json = delta.ToJson();
  out.metrics_text = delta.ToText();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool include_timing = true;
  std::string only_method;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      include_timing = false;
    } else if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      only_method = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: recovery_timeline [--json] [--no-timing] "
                   "[--method NAME]\n");
      return 2;
    }
  }

  std::vector<RunOutput> runs;
  bool all_ok = true;
  for (const methods::MethodKind kind :
       {methods::MethodKind::kLogical, methods::MethodKind::kPhysical,
        methods::MethodKind::kPhysiological,
        methods::MethodKind::kGeneralized}) {
    if (!only_method.empty() &&
        only_method != methods::MethodKindName(kind)) {
      continue;
    }
    runs.push_back(RunScenario(kind, include_timing));
    all_ok = all_ok && runs.back().ok;
  }
  if (runs.empty()) {
    std::fprintf(stderr, "unknown method '%s'\n", only_method.c_str());
    return 2;
  }

  if (json) {
    redo::obs::JsonWriter w;
    w.BeginObject();
    w.Key("runs");
    w.BeginArray();
    for (const RunOutput& run : runs) {
      w.BeginObject();
      w.Key("method");
      w.String(run.method);
      w.Key("ok");
      w.Bool(run.ok);
      w.Key("timeline");
      w.Raw(run.timeline_json_array);
      w.Key("metrics");
      w.Raw(run.metrics_json);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    for (const RunOutput& run : runs) {
      std::printf("=== %s ===\n%s\n--- recovery metrics delta ---\n%s\n",
                  run.method.c_str(), run.timeline_text.c_str(),
                  run.metrics_text.c_str());
    }
  }
  return all_ok ? 0 : 1;
}
