// Walks through every worked example in the paper — Scenarios 1-3
// (Figures 1-3), the conflict/installation state graphs of Figures 4-5,
// the §5 write-graph examples (E/F/G and H/J, Figure 7), and the §6.4
// B-tree split of Figure 8 — checking each claim with the executable
// model and printing claim vs. outcome.

#include <cstdio>

#include "core/exposed.h"
#include "core/replay.h"
#include "core/scenarios.h"
#include "core/write_graph.h"

namespace {

using namespace redo;
using namespace redo::core;

int failures = 0;

void Claim(const char* what, bool expected, bool actual) {
  const bool ok = expected == actual;
  if (!ok) ++failures;
  std::printf("  %-68s paper: %-3s  measured: %-3s  %s\n", what,
              expected ? "yes" : "no", actual ? "yes" : "no",
              ok ? "[OK]" : "[MISMATCH]");
}

void Scenario1() {
  std::printf("Scenario 1 (Fig. 1): A: x<-y+1 then B: y<-2; B installed, A not\n");
  const Scenario s = MakeScenario1();
  State crash(2, 0);
  crash.Set(1, 2);
  Claim("crash state is potentially recoverable",
        false,
        IsPotentiallyRecoverable(s.history, s.conflict, s.state_graph, crash));
  Claim("some installation prefix explains the state", false,
        FindExplainingPrefix(s.history, s.conflict, s.installation,
                             s.state_graph, crash, 1024)
            .has_value());
  Claim("read-write edge A->B survives into the installation graph", true,
        s.installation.dag().HasEdge(0, 1));
}

void Scenario2() {
  std::printf("\nScenario 2 (Fig. 2): B: y<-2 then A: x<-y+1; A installed, B not\n");
  const Scenario s = MakeScenario2();
  State crash(2, 0);
  crash.Set(0, 3);
  Claim("crash state is potentially recoverable", true,
        IsPotentiallyRecoverable(s.history, s.conflict, s.state_graph, crash));
  const auto witness =
      FindRecoveryWitness(s.history, s.conflict, s.state_graph, crash);
  Claim("replaying just B recovers the state", true,
        witness.has_value() && witness->Test(0) && !witness->Test(1));
  Claim("write-read edge B->A is dropped from the installation graph", true,
        s.installation.dag().NumEdges() == 0);
}

void Scenario3() {
  std::printf("\nScenario 3 (Fig. 3): C: <x<-x+1; y<-y+1> then D: x<-y+1; only C's y installed\n");
  const Scenario s = MakeScenario3();
  State crash(2, 0);
  crash.Set(1, 1);
  Claim("crash state is potentially recoverable", true,
        IsPotentiallyRecoverable(s.history, s.conflict, s.state_graph, crash));
  const Bitset installed_c = Bitset::FromVector(2, {0});
  Claim("x is unexposed by {C} (D overwrites it before any read)", false,
        IsExposed(s.history, s.conflict, installed_c, 0));
  Claim("y is exposed by {C} (D reads it)", true,
        IsExposed(s.history, s.conflict, installed_c, 1));
  State junk = crash;
  junk.Set(0, -424242);
  Claim("junk in the unexposed x does not hurt recovery", true,
        IsPotentiallyRecoverable(s.history, s.conflict, s.state_graph, junk));
}

void Figures4And5() {
  std::printf("\nFigures 4-5: O, P, Q and the installation graph's extra prefix\n");
  const Scenario s = MakeFigure4();
  Claim("conflict graph totally orders O < P < Q (4 prefixes)", true,
        s.conflict.dag().CountPrefixes(100) == 4);
  Claim("installation graph admits 5 prefixes (adds {P})", true,
        s.installation.dag().CountPrefixes(100) == 5);
  const Bitset only_p = Bitset::FromVector(3, {1});
  const State determined = s.state_graph.DeterminedState(only_p);
  Claim("minimal uninstalled op O still sees x = 0 after installing P", true,
        IsApplicable(s.history, s.state_graph, 0, determined));
  State recovered = determined;
  Claim("replaying O then Q from {P}'s state reaches the final state", true,
        ReplayUninstalled(s.history, s.conflict, s.state_graph, only_p,
                          &recovered)
                .ok() &&
            recovered == s.state_graph.FinalState());
}

void Section5AndFigure7() {
  std::printf("\n§5 + Figure 7: write graphs, atomic installs, unexposed writes\n");
  // E, F, G: x and y must be updated atomically.
  const Scenario efg = MakeSection5Efg();
  WriteGraph wg_efg = WriteGraph::FromInstallationGraph(
      efg.history, efg.installation, efg.state_graph);
  Claim("collapsing {E,G} (without F) is rejected as cyclic", false,
        wg_efg.CollapseNodes({0, 2}).ok());
  Claim("collapsing {E,F,G} gives one atomic x+y install", true,
        wg_efg.CollapseNodes({0, 1, 2}).ok());

  // H, J: H's write to y may be dropped (unexposed).
  const Scenario hj = MakeSection5Hj();
  WriteGraph wg_hj = WriteGraph::FromInstallationGraph(
      hj.history, hj.installation, hj.state_graph);
  Claim("removing H's write of y is permitted (J blind-writes y)", true,
        wg_hj.RemoveWrite(0, 1).ok());
  Claim("installing H with only x written still explains the state", true,
        [&] {
          if (!wg_hj.InstallNode(0).ok()) return false;
          const State stable = wg_hj.DeterminedInstalledState(hj.initial);
          return PrefixExplains(hj.history, hj.conflict, hj.installation,
                                hj.state_graph,
                                wg_hj.InstalledOps(hj.history.size()), stable)
              .explains;
        }());

  // Figure 7: collapsing the x-writers O and Q.
  const Scenario fig4 = MakeFigure4();
  WriteGraph wg7 = WriteGraph::FromInstallationGraph(
      fig4.history, fig4.installation, fig4.state_graph);
  const Result<WriteNodeId> merged = wg7.CollapseNodes({0, 2});
  Claim("collapsing O and Q succeeds", true, merged.ok());
  Claim("the cache manager must now write y (P) before x ({O,Q})", true,
        merged.ok() && wg7.InstallFrontier() == std::vector<WriteNodeId>{1});
}

void Figure8() {
  std::printf("\nFigure 8 (§6.4): the generalized B-tree split\n");
  const Scenario s = MakeFigure8();
  Claim("installation edge P->Q forces new-page-before-old write order", true,
        s.installation.dag().HasEdge(0, 1));
  State new_first(2, 0);
  new_first.Set(0, 1000);  // old page intact
  new_first.Set(1, 500);   // new page written
  Claim("writing the new page first leaves a recoverable state", true,
        IsPotentiallyRecoverable(s.history, s.conflict, s.state_graph,
                                 new_first));
  State old_first(2, 0);
  old_first.Set(0, 500);  // old page overwritten, new page lost
  Claim("overwriting the old page first loses the moved half", false,
        IsPotentiallyRecoverable(s.history, s.conflict, s.state_graph,
                                 old_first));
}

}  // namespace

int main() {
  Scenario1();
  Scenario2();
  Scenario3();
  Figures4And5();
  Section5AndFigure7();
  Figure8();
  std::printf("\n%s (%d mismatches)\n",
              failures == 0 ? "All paper claims reproduced." : "MISMATCHES FOUND",
              failures);
  return failures == 0 ? 0 : 1;
}
