// A recovery debugger: runs a workload, crashes, and dumps everything a
// recovery engineer would want to see at the crash point — the stable
// log with record types and sizes, the segment map (boundaries, seal
// CRCs, archive status) with scrub verdicts, the checkpoint and its
// dirty page table, per-page LSN tags vs. the redo scan, the redo test's
// verdict per record, and the formal checker's invariant report.
//
// With `--json`, emits the same crash-point inspection as one JSON
// document (segment map with seal CRCs, scrub verdicts, checkpoint DPT,
// page LSN tags, recovery outcome) — parseable by `python3 -m json.tool`,
// which is exactly what CI runs against it.
//
// Usage: log_inspector [--json] [method: logical|physical|physiological|
//                       generalized|aries] [actions] [seed]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "checker/recovery_checker.h"
#include "obs/json_writer.h"
#include "wal/log_manager.h"
#include "engine/workload.h"
#include "methods/common.h"

namespace {

using namespace redo;

const char* VerdictName(wal::SegmentVerdict::State state) {
  switch (state) {
    case wal::SegmentVerdict::State::kIntact: return "intact";
    case wal::SegmentVerdict::State::kRepairedFromMirror:
      return "repaired-from-mirror";
    case wal::SegmentVerdict::State::kMirrorRebuilt: return "mirror-rebuilt";
    case wal::SegmentVerdict::State::kResealed: return "resealed";
    case wal::SegmentVerdict::State::kHole: return "HOLE (unreadable)";
  }
  return "?";
}

void PrintSegments(const char* label, const std::vector<wal::SegmentInfo>& segments) {
  for (const wal::SegmentInfo& seg : segments) {
    if (seg.sealed) {
      std::printf("  %s seg %llu: lsn [%llu, %llu], %zu bytes, sealed, ",
                  label, (unsigned long long)seg.id,
                  (unsigned long long)seg.first_lsn,
                  (unsigned long long)seg.last_lsn, seg.bytes);
      if (seg.mirror_seal != 0) {  // archive copies carry a single seal
        std::printf("seal crc %08x/%08x%s\n", seg.primary_seal,
                    seg.mirror_seal, seg.archived ? ", archived" : "");
      } else {
        std::printf("seal crc %08x\n", seg.primary_seal);
      }
    } else {
      std::printf("  %s seg %llu: lsn [%llu, %llu], %zu bytes, active\n",
                  label, (unsigned long long)seg.id,
                  (unsigned long long)seg.first_lsn,
                  (unsigned long long)seg.last_lsn, seg.bytes);
    }
  }
}

void EmitSegmentsJson(obs::JsonWriter& w,
                      const std::vector<wal::SegmentInfo>& segments) {
  w.BeginArray();
  for (const wal::SegmentInfo& seg : segments) {
    w.BeginObject();
    w.Key("id");
    w.UInt(seg.id);
    w.Key("first_lsn");
    w.UInt(seg.first_lsn);
    w.Key("last_lsn");
    w.UInt(seg.last_lsn);
    w.Key("bytes");
    w.UInt(seg.bytes);
    w.Key("sealed");
    w.Bool(seg.sealed);
    w.Key("archived");
    w.Bool(seg.archived);
    if (seg.sealed) {
      w.Key("primary_seal_crc");
      w.UInt(seg.primary_seal);
      if (seg.mirror_seal != 0) {  // archive copies carry a single seal
        w.Key("mirror_seal_crc");
        w.UInt(seg.mirror_seal);
      }
    }
    w.EndObject();
  }
  w.EndArray();
}

void EmitVerdictsJson(obs::JsonWriter& w,
                      const std::vector<wal::SegmentVerdict>& verdicts) {
  w.BeginArray();
  for (const wal::SegmentVerdict& verdict : verdicts) {
    w.BeginObject();
    w.Key("segment");
    w.UInt(verdict.id);
    w.Key("first_lsn");
    w.UInt(verdict.first_lsn);
    w.Key("last_lsn");
    w.UInt(verdict.last_lsn);
    w.Key("state");
    w.String(wal::SegmentVerdictStateName(verdict.state));
    w.EndObject();
  }
  w.EndArray();
}

methods::MethodKind ParseMethod(const char* name) {
  if (std::strcmp(name, "logical") == 0) return methods::MethodKind::kLogical;
  if (std::strcmp(name, "physical") == 0) return methods::MethodKind::kPhysical;
  if (std::strcmp(name, "generalized") == 0) {
    return methods::MethodKind::kGeneralized;
  }
  if (std::strcmp(name, "aries") == 0) {
    return methods::MethodKind::kPhysiologicalAnalysis;
  }
  return methods::MethodKind::kPhysiological;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  if (argc > 1 && std::strcmp(argv[1], "--json") == 0) {
    json = true;
    --argc;
    ++argv;
  }
  const methods::MethodKind kind =
      argc > 1 ? ParseMethod(argv[1]) : methods::MethodKind::kPhysiological;
  const int actions = argc > 2 ? std::atoi(argv[2]) : 60;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 12;

  engine::MiniDbOptions options;
  options.num_pages = 8;
  options.cache_capacity = kind == methods::MethodKind::kLogical ? 0 : 4;
  // Small segments so the workload seals a few and the segment map below
  // has something to show.
  options.wal.segment_bytes = 256;
  engine::MiniDb db(options, methods::MakeMethod(kind, {options.num_pages}));
  engine::TraceRecorder trace(db.disk());
  db.Attach(redo::engine::Instrumentation{&trace, nullptr});

  engine::WorkloadOptions wopts;
  wopts.num_pages = options.num_pages;
  engine::Workload workload(wopts, seed);
  Rng rng(seed);
  for (int i = 0; i < actions; ++i) {
    const engine::Action action = workload.Next();
    const Status st = engine::ExecuteAction(db, action, rng);
    REDO_CHECK(st.ok()) << st.ToString();
  }
  // Leave an unforced tail so the crash is interesting.
  if (db.log().last_lsn() > 3) {
    (void)db.log().Force(db.log().last_lsn() - 3);
  }

  db.Crash();

  if (json) {
    const std::vector<wal::SegmentInfo> live = db.log().LiveSegments();
    const std::vector<wal::SegmentInfo> archived = db.log().ArchivedSegments();
    const wal::ScrubReport scrub = db.log().Scrub();
    const methods::EngineContext jctx = db.ctx();
    const core::Lsn scan_start = db.method().RedoScanStart(jctx).value();
    const auto dpt = methods::internal_methods::ReadCheckpointDpt(jctx).value();
    const checker::CheckResult verdict = checker::CheckCrashState(db, trace);
    const Status recovered = db.Recover();

    obs::JsonWriter w;
    w.BeginObject();
    w.Key("method");
    w.String(db.method().name());
    w.Key("stable_lsn");
    w.UInt(db.log().stable_lsn());
    w.Key("redo_scan_start");
    w.UInt(scan_start);
    w.Key("live_segments");
    EmitSegmentsJson(w, live);
    w.Key("archived_segments");
    EmitSegmentsJson(w, archived);
    w.Key("scrub");
    w.BeginObject();
    w.Key("segments");
    w.UInt(scrub.segments);
    w.Key("repairs");
    w.UInt(scrub.repairs);
    w.Key("holes");
    w.UInt(scrub.holes);
    w.Key("archive_repairs");
    w.UInt(scrub.archive_repairs);
    w.Key("archive_holes");
    w.UInt(scrub.archive_holes);
    w.Key("first_unreadable_lsn");
    w.UInt(scrub.first_unreadable_lsn);
    w.Key("verdicts");
    EmitVerdictsJson(w, scrub.verdicts);
    w.Key("archive_verdicts");
    EmitVerdictsJson(w, scrub.archive_verdicts);
    w.EndObject();
    w.Key("checkpoint_dirty_page_table");
    w.BeginArray();
    for (const auto& [page, rec_lsn] : dpt) {
      w.BeginObject();
      w.Key("page");
      w.UInt(page);
      w.Key("rec_lsn");
      w.UInt(rec_lsn);
      w.EndObject();
    }
    w.EndArray();
    w.Key("page_lsns");
    w.BeginArray();
    for (storage::PageId p = 0; p < db.num_pages(); ++p) {
      w.UInt(db.disk().PeekPage(p).lsn());
    }
    w.EndArray();
    w.Key("invariant_ok");
    w.Bool(verdict.ok);
    w.Key("recovery");
    w.BeginObject();
    w.Key("ok");
    w.Bool(recovered.ok());
    w.Key("status");
    w.String(recovered.ToString());
    const methods::RecoveryMethod::RedoScanStats stats =
        db.method().last_scan_stats();
    w.Key("scanned");
    w.UInt(stats.scanned);
    w.Key("replayed");
    w.UInt(stats.replayed);
    w.Key("skipped_without_fetch");
    w.UInt(stats.skipped_without_fetch);
    w.Key("page_fetches");
    w.UInt(stats.page_fetches);
    w.EndObject();
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
    return verdict.ok && recovered.ok() ? 0 : 1;
  }

  std::printf("=== crash point (method: %s) ===\n", db.method().name());
  std::printf("log: last appended lsn lost with the crash; stable through %llu\n",
              (unsigned long long)db.log().stable_lsn());

  std::printf("\n--- log segments ---\n");
  PrintSegments("live", db.log().LiveSegments());
  PrintSegments("arch", db.log().ArchivedSegments());
  const wal::ScrubReport scrub = db.log().Scrub();
  std::printf("scrub: %zu sealed live segments, %zu repairs, %zu holes\n",
              scrub.segments, scrub.repairs, scrub.holes);
  for (const wal::SegmentVerdict& verdict : scrub.verdicts) {
    std::printf("  seg %llu lsn [%llu, %llu]: %s\n",
                (unsigned long long)verdict.id,
                (unsigned long long)verdict.first_lsn,
                (unsigned long long)verdict.last_lsn,
                VerdictName(verdict.state));
  }

  const methods::EngineContext ctx = db.ctx();
  const core::Lsn scan_start = db.method().RedoScanStart(ctx).value();
  std::printf("redo scan starts at lsn %llu\n", (unsigned long long)scan_start);
  const auto dpt = methods::internal_methods::ReadCheckpointDpt(ctx).value();
  if (!dpt.empty()) {
    std::printf("checkpoint dirty page table:");
    for (const auto& [page, rec_lsn] : dpt) {
      std::printf("  p%u@%llu", page, (unsigned long long)rec_lsn);
    }
    std::printf("\n");
  }

  std::printf("\n--- stable page LSN tags ---\n");
  for (storage::PageId p = 0; p < db.num_pages(); ++p) {
    std::printf("  page %u: lsn %llu\n", p,
                (unsigned long long)db.disk().PeekPage(p).lsn());
  }

  std::printf("\n--- stable log (scan region marked) ---\n");
  const std::vector<wal::LogRecord> records = db.log().StableRecords(1).value();
  for (const wal::LogRecord& record : records) {
    const bool scanned = record.lsn >= scan_start;
    std::printf("  %c %s\n", scanned ? '>' : ' ',
                engine::DescribeRecord(record).c_str());
  }

  std::printf("\n--- recovery invariant (formal checker) ---\n");
  const checker::CheckResult verdict = checker::CheckCrashState(db, trace);
  std::printf("%s\n", verdict.ToString().c_str());

  std::printf("\n--- recovery ---\n");
  const Status recovered = db.Recover();
  std::printf("recover(): %s\n", recovered.ToString().c_str());
  const methods::RecoveryMethod::RedoScanStats stats =
      db.method().last_scan_stats();
  if (stats.scanned > 0) {
    std::printf("scanned %zu records, replayed %zu, skipped-without-fetch %zu, "
                "page fetches %zu\n",
                stats.scanned, stats.replayed, stats.skipped_without_fetch,
                stats.page_fetches);
  }
  return verdict.ok && recovered.ok() ? 0 : 1;
}
